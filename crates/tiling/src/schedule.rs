//! Elementary-operation program generation — the "accelerator task"
//! generation step of the framework (paper Fig. 10: *Task Scheduling →
//! generate accel. task & eval*).
//!
//! A subgraph executes as a series of elementary operations; within one
//! operation every node performs up to `upd_num` memory updates in
//! topological order. [`generate_program`] emits the explicit step list
//! (what to load from DRAM, what to compute, what still stalls during
//! pipeline ramp-up), and [`Program::validate`] independently checks the
//! *hazard-freedom invariant*: every compute step's input windows are
//! resident in its producers' MAIN/SIDE regions at the moment it executes —
//! which is precisely what the consumption-centric derivation promises in
//! steady state, and what the ramp-up lag handling preserves at the
//! borders.

use crate::scheme::ExecutionScheme;
use cocco_graph::{EdgeReq, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a step's data comes from.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepKind {
    /// A boundary-input tile loaded from DRAM into the node's regions.
    DramLoad,
    /// Rows computed on the PE array from resident producer data.
    Compute,
}

/// One memory update of one node within an elementary operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    /// The updated node.
    pub node: NodeId,
    /// 1-based global update counter of this node.
    pub update: u32,
    /// First fresh output row produced by this update.
    pub from: u32,
    /// Last fresh output row (inclusive).
    pub to: u32,
    /// Load or compute.
    pub kind: StepKind,
    /// Whether the fresh rows are also streamed back to DRAM (subgraph
    /// outputs and tensors needed by later subgraphs).
    pub writeback: bool,
}

/// The step list of one elementary operation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElementaryOp {
    /// 1-based operation index.
    pub index: u32,
    /// Steps in issue order (topological across nodes).
    pub steps: Vec<Step>,
}

/// A complete subgraph program: the control flow the paper's NPU runs
/// between two buffer-region-manager reconfigurations.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    ops: Vec<ElementaryOp>,
}

impl Program {
    /// The elementary operations in execution order.
    pub fn ops(&self) -> &[ElementaryOp] {
        &self.ops
    }

    /// Total number of steps across all operations.
    pub fn step_count(&self) -> usize {
        self.ops.iter().map(|op| op.steps.len()).sum()
    }

    /// Rows loaded from DRAM by this program (height dimension).
    pub fn dram_load_rows(&self) -> u64 {
        self.ops
            .iter()
            .flat_map(|op| &op.steps)
            .filter(|s| s.kind == StepKind::DramLoad)
            .map(|s| u64::from(s.to - s.from + 1))
            .sum()
    }

    /// `true` when every covered node has produced its full height extent.
    pub fn is_complete(&self, graph: &Graph, scheme: &ExecutionScheme) -> bool {
        let mut avail: BTreeMap<NodeId, u32> = BTreeMap::new();
        for step in self.ops.iter().flat_map(|op| &op.steps) {
            avail.insert(step.node, step.to + 1);
        }
        scheme
            .iter()
            .all(|(id, _)| avail.get(&id) == Some(&graph.node(id).out_shape().h))
    }

    /// Validates the *hard* hazard-freedom invariant: no compute step ever
    /// reads producer rows that have not been produced yet (and every
    /// producer is covered by the scheme).
    ///
    /// Returns the first violating step, or `None` when the program is
    /// hazard-free. Pair with [`retention_slack`](Program::retention_slack)
    /// to also bound the eviction side of the invariant.
    pub fn validate(&self, graph: &Graph, scheme: &ExecutionScheme) -> Option<Step> {
        let mut avail: BTreeMap<NodeId, u32> = BTreeMap::new();
        for op in &self.ops {
            for step in &op.steps {
                if step.kind == StepKind::Compute {
                    for (idx, &p) in graph.node(step.node).inputs().iter().enumerate() {
                        if scheme.get(p).is_none() {
                            return Some(*step);
                        }
                        let got = *avail.get(&p).unwrap_or(&0);
                        let (_, hi) = needed_rows(graph, step, idx, p);
                        if got == 0 || hi > got - 1 {
                            return Some(*step);
                        }
                    }
                }
                avail.insert(step.node, step.to + 1);
            }
        }
        None
    }

    /// The eviction side of the invariant: the maximum number of rows, over
    /// every node and step, that a consumer read *below* the producer's
    /// steady-state retention window of `x` rows.
    ///
    /// In steady state this is 0 by construction of the derivation; during
    /// pipeline ramp-up at tensor borders, padding lets early updates
    /// overshoot (and deep joins lag) by a bounded phase offset, which the
    /// producer's region must absorb by retaining that many extra rows.
    /// The extra footprint is at most a few rows per node — callers can
    /// treat the returned value (in rows) as the required per-node slack.
    pub fn retention_slack(&self, graph: &Graph, scheme: &ExecutionScheme) -> u32 {
        let mut avail: BTreeMap<NodeId, u32> = BTreeMap::new();
        let mut worst = 0u32;
        for op in &self.ops {
            for step in &op.steps {
                if step.kind == StepKind::Compute {
                    for (idx, &p) in graph.node(step.node).inputs().iter().enumerate() {
                        let Some(ps) = scheme.get(p) else { continue };
                        let got = *avail.get(&p).unwrap_or(&0);
                        if got == 0 {
                            continue;
                        }
                        let (lo, _) = needed_rows(graph, step, idx, p);
                        let resident_lo = got.saturating_sub(ps.tile.h);
                        if lo < resident_lo {
                            worst = worst.max(resident_lo - lo);
                        }
                    }
                }
                avail.insert(step.node, step.to + 1);
            }
        }
        worst
    }
}

/// Producer rows `[lo, hi]` that input `idx` of `step` reads.
fn needed_rows(graph: &Graph, step: &Step, idx: usize, producer: NodeId) -> (u32, u32) {
    let ph = graph.node(producer).out_shape().h;
    match graph.node(step.node).edge_req(idx) {
        EdgeReq::Full => (0, ph - 1),
        EdgeReq::Sliding(k) => {
            // Output rows [from..to] read input rows
            // [from·s − pad .. to·s + F − 1 − pad], clamped at the borders.
            let lo = (step.from * k.stride.h).saturating_sub(k.pad.h);
            let hi = (step.to * k.stride.h + k.size.h - 1)
                .saturating_sub(k.pad.h)
                .min(ph - 1);
            (lo, hi)
        }
    }
}

/// Generates the elementary-operation program for a derived scheme as a
/// true dataflow schedule: each update produces as many fresh rows as its
/// producers' available data allows (up to the steady-state `Δ` advance,
/// with an initial `x`-row prefill), so pipeline ramp-up at tensor borders
/// stalls instead of reading unproduced rows.
///
/// `writeback` marks nodes whose fresh rows stream back to DRAM. `max_ops`
/// bounds the emitted operations; the steady-state count is
/// [`ExecutionScheme::elementary_ops`]`.h` plus a few drain operations for
/// deep subgraphs.
///
/// # Examples
///
/// ```
/// use cocco_tiling::{derive_scheme, schedule::generate_program, Mapper, MapperPolicy};
///
/// let g = cocco_graph::models::chain(3);
/// let members: Vec<_> = g.node_ids().collect();
/// let mapper = Mapper::new(MapperPolicy::FullWidthRows { rows: 4 });
/// let scheme = derive_scheme(&g, &members, &mapper).unwrap();
/// let program = generate_program(&g, &scheme, &|_| false, 32);
/// assert!(program.validate(&g, &scheme).is_none(), "hazard-free");
/// assert!(program.is_complete(&g, &scheme));
/// ```
pub fn generate_program(
    graph: &Graph,
    scheme: &ExecutionScheme,
    writeback: &dyn Fn(NodeId) -> bool,
    max_ops: u32,
) -> Program {
    let covered: Vec<NodeId> = scheme.iter().map(|(id, _)| id).collect();
    let mut avail: BTreeMap<NodeId, u32> = covered.iter().map(|&id| (id, 0)).collect();
    let mut updates: BTreeMap<NodeId, u32> = covered.iter().map(|&id| (id, 0)).collect();
    let mut program = Program { ops: Vec::new() };
    for index in 1..=max_ops {
        let mut steps = Vec::new();
        for &id in &covered {
            // cocco-audit: allow(R1) covered is scheme's own node list collected above
            let s = scheme.get(id).expect("covered");
            let h = graph.node(id).out_shape().h;
            let node = graph.node(id);
            let is_load = s.boundary_input || node.op().is_input();
            let kind = if is_load {
                StepKind::DramLoad
            } else {
                StepKind::Compute
            };
            for _ in 0..s.upd_num.h.max(1) {
                let got = avail[&id];
                if got >= h {
                    break;
                }
                // DRAM loads advance at the derived rate: an x-row prefill
                // then Δ fresh rows per update. A computed node's *first*
                // update is eager — it absorbs the top-border rows that
                // padding enables, which is what keeps its phase aligned
                // with the producer's eviction — and every later update
                // advances by at most Δ so the drain at the bottom border
                // also stays inside the producers' retention windows.
                let target = if !is_load && got == 0 {
                    h
                } else if got == 0 {
                    s.tile.h.min(h)
                } else {
                    (got + s.delta.h).min(h)
                };
                // Dataflow bound: rows computable from producer data.
                let producible = if is_load {
                    target
                } else {
                    let mut bound = target;
                    for (idx, &p) in node.inputs().iter().enumerate() {
                        let ph = graph.node(p).out_shape().h;
                        let pa = *avail.get(&p).unwrap_or(&ph);
                        let limit = match node.edge_req(idx) {
                            EdgeReq::Full => {
                                if pa >= ph {
                                    target
                                } else {
                                    0
                                }
                            }
                            EdgeReq::Sliding(k) => {
                                if pa >= ph {
                                    target
                                } else {
                                    // Highest output row whose window fits
                                    // in rows [0, pa): r·s + F − 1 − pad ≤ pa − 1.
                                    let num =
                                        i64::from(pa) + i64::from(k.pad.h) - i64::from(k.size.h);
                                    if num < 0 {
                                        0
                                    } else {
                                        (num / i64::from(k.stride.h.max(1))) as u32 + 1
                                    }
                                }
                            }
                        };
                        bound = bound.min(limit);
                    }
                    bound
                };
                if producible <= got {
                    break; // stall: producers have not advanced enough
                }
                // cocco-audit: allow(R1) updates was initialized with every covered id
                let t = updates.get_mut(&id).expect("covered");
                *t += 1;
                steps.push(Step {
                    node: id,
                    update: *t,
                    from: got,
                    to: producible - 1,
                    kind,
                    writeback: writeback(id),
                });
                avail.insert(id, producible);
            }
        }
        if steps.is_empty() {
            break; // everything drained
        }
        program.ops.push(ElementaryOp { index, steps });
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{derive_scheme, Mapper, MapperPolicy};

    fn chain_scheme(rows: u32) -> (cocco_graph::Graph, ExecutionScheme) {
        let g = cocco_graph::models::chain(3);
        let members: Vec<_> = g.node_ids().collect();
        let mapper = Mapper::new(MapperPolicy::FullWidthRows { rows });
        let scheme = derive_scheme(&g, &members, &mapper).unwrap();
        (g, scheme)
    }

    #[test]
    fn chain_program_is_hazard_free_and_complete() {
        for rows in [1u32, 2, 4, 8] {
            let (g, scheme) = chain_scheme(rows);
            let program = generate_program(&g, &scheme, &|_| false, 128);
            assert!(
                program.validate(&g, &scheme).is_none(),
                "rows={rows}: hazard found"
            );
            assert!(program.is_complete(&g, &scheme), "rows={rows}: incomplete");
            // Ramp transients need at most a couple of extra retained rows.
            assert!(
                program.retention_slack(&g, &scheme) <= 2,
                "rows={rows}: slack too large"
            );
        }
    }

    #[test]
    fn branchy_program_is_hazard_free() {
        let g = cocco_graph::models::branchy();
        let members: Vec<_> = g.node_ids().collect();
        let scheme = derive_scheme(&g, &members, &Mapper::default()).unwrap();
        let program = generate_program(&g, &scheme, &|_| false, 256);
        assert!(program.validate(&g, &scheme).is_none());
        assert!(program.is_complete(&g, &scheme));
        assert!(program.retention_slack(&g, &scheme) <= 4);
    }

    #[test]
    fn googlenet_subgraphs_are_hazard_free() {
        // The strongest executable-scheme check: fused inception slices
        // admit hazard-free dataflow schedules.
        let g = cocco_graph::models::googlenet();
        let ids: Vec<_> = g.node_ids().collect();
        for (start, window) in [(2usize, 6usize), (5, 8), (10, 10)] {
            if start + window > ids.len() {
                continue;
            }
            let members = &ids[start..start + window];
            if !g.is_connected_subset(members) {
                continue;
            }
            let Ok(scheme) = derive_scheme(&g, members, &Mapper::default()) else {
                continue;
            };
            let program = generate_program(&g, &scheme, &|_| true, 4096);
            assert!(
                program.validate(&g, &scheme).is_none(),
                "start={start} window={window}: hazard"
            );
            assert!(program.is_complete(&g, &scheme));
            // Border phase offsets stay within a kernel overhang of rows.
            let slack = program.retention_slack(&g, &scheme);
            assert!(slack <= 8, "start={start} window={window}: slack {slack}");
        }
    }

    #[test]
    fn inputs_load_from_dram_and_outputs_write_back() {
        let (g, scheme) = chain_scheme(4);
        let out = g.output_ids()[0];
        let program = generate_program(&g, &scheme, &|id| id == out, 64);
        let has_load = program
            .ops()
            .iter()
            .flat_map(|op| &op.steps)
            .any(|s| s.kind == StepKind::DramLoad);
        let has_writeback = program
            .ops()
            .iter()
            .flat_map(|op| &op.steps)
            .any(|s| s.writeback && s.node == out);
        assert!(has_load);
        assert!(has_writeback);
        // Every input row is loaded exactly once: 32 rows.
        assert_eq!(program.dram_load_rows(), 32);
    }

    #[test]
    fn fresh_rows_partition_the_tensor() {
        // Union of fresh rows per node covers [0, H) without overlap.
        let (g, scheme) = chain_scheme(3);
        let program = generate_program(&g, &scheme, &|_| false, 128);
        for (id, _) in scheme.iter() {
            let h = g.node(id).out_shape().h;
            let mut covered = vec![false; h as usize];
            for step in program.ops().iter().flat_map(|op| &op.steps) {
                if step.node != id {
                    continue;
                }
                for r in step.from..=step.to {
                    assert!(!covered[r as usize], "{id}: row {r} produced twice");
                    covered[r as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "{id}: rows missing");
        }
    }

    #[test]
    fn stalls_resolve_within_a_few_ops() {
        // Ramp-up lag is bounded by the pipeline depth: the program needs
        // only a few extra operations beyond the steady-state count.
        let (g, scheme) = chain_scheme(2);
        let steady = scheme.elementary_ops(&g).h;
        let program = generate_program(&g, &scheme, &|_| false, 256);
        assert!(program.is_complete(&g, &scheme));
        assert!(
            (program.ops().len() as u32) <= steady + g.len() as u32,
            "{} ops for steady {steady}",
            program.ops().len()
        );
    }
}
