//! Errors raised by the tiling flow.

use cocco_graph::NodeId;
use std::error::Error;
use std::fmt;

/// Error raised while deriving a subgraph execution scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TilingError {
    /// The member set is empty.
    EmptySubgraph,
    /// A member id is out of range for the graph.
    UnknownNode {
        /// The offending id.
        node: NodeId,
    },
    /// A member appears twice in the member list.
    DuplicateMember {
        /// The duplicated id.
        node: NodeId,
    },
    /// The update-rate system has no consistent solution (malformed graph
    /// whose paths reduce the same tensor by different stride products).
    InconsistentRates {
        /// Node at which the inconsistency was detected.
        node: NodeId,
    },
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilingError::EmptySubgraph => write!(f, "subgraph has no members"),
            TilingError::UnknownNode { node } => {
                write!(f, "node {node} does not exist in the graph")
            }
            TilingError::DuplicateMember { node } => {
                write!(f, "node {node} listed twice in the subgraph")
            }
            TilingError::InconsistentRates { node } => {
                write!(f, "no consistent update rate exists at node {node}")
            }
        }
    }
}

impl Error for TilingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TilingError::UnknownNode {
            node: NodeId::from_index(3),
        };
        assert!(e.to_string().contains("n3"));
    }

    #[test]
    fn implements_error_send_sync() {
        fn check<E: Error + Send + Sync + 'static>(_: E) {}
        check(TilingError::EmptySubgraph);
    }
}
