//! The three-stage consumption-centric derivation (paper §3.1, Fig. 5).

use crate::error::TilingError;
use crate::mapper::Mapper;
use crate::ratio::{gcd, lcm, Ratio};
use crate::scheme::{ExecutionScheme, NodeScheme};
use cocco_graph::{Dims2, EdgeReq, Graph, NodeId};
use std::collections::BTreeMap;

/// Per-dimension view of an [`EdgeReq`] used by the backward derivation.
#[derive(Copy, Clone, Debug)]
enum DimReq {
    /// Sliding window with kernel extent `f` and stride `s`.
    Sliding { f: u32, s: u32 },
    /// The whole producer extent must be resident.
    Full,
}

fn dim_reqs(req: EdgeReq) -> (DimReq, DimReq) {
    match req {
        EdgeReq::Full => (DimReq::Full, DimReq::Full),
        EdgeReq::Sliding(k) => (
            DimReq::Sliding {
                f: k.size.h,
                s: k.stride.h,
            },
            DimReq::Sliding {
                f: k.size.w,
                s: k.stride.w,
            },
        ),
    }
}

/// Derives the execution scheme of the subgraph formed by `members`.
///
/// The scheme covers every member plus every *boundary producer* (a node
/// outside the member set whose output is consumed inside it): boundary
/// producers occupy buffer regions too — their tiles are loaded from DRAM
/// (the "negative-numbered" input nodes of paper Figures 1 and 5).
///
/// Stage 1 uses `mapper` to size the tiles of the subgraph's output nodes
/// (members with no consumer inside the member set); stage 2 runs the
/// backward LCM derivation; stage 3 computes the co-prime `upd_num`
/// solution when one exists ([`ExecutionScheme::exact_upd`] reports whether
/// it does — clamping at tensor extents makes large-kernel subgraphs
/// inexact, in which case `upd_num` falls back to 1 per update).
///
/// # Errors
///
/// Returns an error if `members` is empty, contains duplicates or ids
/// outside `graph`, or if the update-rate system is inconsistent for a
/// subgraph that required an exact solution.
///
/// # Examples
///
/// ```
/// use cocco_tiling::{derive_scheme, Mapper, MapperPolicy};
///
/// let g = cocco_graph::models::branchy();
/// let members: Vec<_> = g.node_ids().collect();
/// let scheme = derive_scheme(&g, &members, &Mapper::default()).unwrap();
/// // Every member and boundary producer is covered.
/// assert_eq!(scheme.len(), g.len());
/// ```
pub fn derive_scheme(
    graph: &Graph,
    members: &[NodeId],
    mapper: &Mapper,
) -> Result<ExecutionScheme, TilingError> {
    if members.is_empty() {
        return Err(TilingError::EmptySubgraph);
    }
    let n = graph.len();
    let mut is_member = vec![false; n];
    for &m in members {
        if m.index() >= n {
            return Err(TilingError::UnknownNode { node: m });
        }
        if is_member[m.index()] {
            return Err(TilingError::DuplicateMember { node: m });
        }
        is_member[m.index()] = true;
    }

    // Extended set: members plus boundary producers, ascending (= topological).
    let mut in_ext = vec![false; n];
    for &m in members {
        in_ext[m.index()] = true;
        for &p in graph.producers(m) {
            in_ext[p.index()] = true;
        }
    }
    let ext: Vec<NodeId> = (0..n)
        .map(NodeId::from_index)
        .filter(|id| in_ext[id.index()])
        .collect();

    // Member consumers of each extended node (deduplicated).
    let mut cons_in: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for &u in &ext {
        let mut cs: Vec<NodeId> = graph
            .consumers(u)
            .iter()
            .copied()
            .filter(|c| is_member[c.index()])
            .collect();
        cs.sort_unstable();
        cs.dedup();
        cons_in.insert(u, cs);
    }

    // Stages 1-2: backward pass in reverse topological order.
    let mut schemes: BTreeMap<NodeId, NodeScheme> = BTreeMap::new();
    let mut exact = true;
    for &u in ext.iter().rev() {
        let shape = graph.node(u).out_shape();
        let extent = Dims2::new(shape.h, shape.w);
        let consumers = &cons_in[&u];
        let (delta, tile) = if consumers.is_empty() {
            let t = mapper.output_tile(shape);
            (t, t)
        } else {
            // Accumulate the unclamped LCM requirement per dimension; a
            // `Full` consumption edge demands the whole extent.
            let mut d = (1u64, 1u64);
            let mut full_edge = (false, false);
            for &v in consumers {
                let (rh, rw) = dim_reqs(graph.edge_req(u, v));
                let vs = schemes[&v];
                match rh {
                    DimReq::Full => full_edge.0 = true,
                    DimReq::Sliding { s, .. } => {
                        d.0 = lcm(d.0, u64::from(vs.delta.h).saturating_mul(u64::from(s)));
                    }
                }
                match rw {
                    DimReq::Full => full_edge.1 = true,
                    DimReq::Sliding { s, .. } => {
                        d.1 = lcm(d.1, u64::from(vs.delta.w).saturating_mul(u64::from(s)));
                    }
                }
            }
            // Truncation (LCM overshooting the tensor) and full-consumption
            // edges break the exact `upd_num` relation (paper footnote on
            // the co-prime solution); natural Δ = extent does not.
            if d.0 > u64::from(extent.h) || d.1 > u64::from(extent.w) {
                exact = false;
            }
            if full_edge.0 || full_edge.1 {
                exact = false;
            }
            let dh = if full_edge.0 {
                extent.h
            } else {
                d.0.min(u64::from(extent.h)) as u32
            };
            let dw = if full_edge.1 {
                extent.w
            } else {
                d.1.min(u64::from(extent.w)) as u32
            };
            let d = Dims2::new(dh.max(1), dw.max(1));
            let mut t = d;
            for &v in consumers {
                let (rh, rw) = dim_reqs(graph.edge_req(u, v));
                match rh {
                    DimReq::Full => t.h = extent.h,
                    DimReq::Sliding { f, s } => {
                        // χ = f_v(Δ(u)/s) = F + (Δ(u)/s − 1)·s = F − s + Δ(u)
                        let chi = f.saturating_sub(s).saturating_add(d.h);
                        t.h = t.h.max(chi.min(extent.h));
                    }
                }
                match rw {
                    DimReq::Full => t.w = extent.w,
                    DimReq::Sliding { f, s } => {
                        let chi = f.saturating_sub(s).saturating_add(d.w);
                        t.w = t.w.max(chi.min(extent.w));
                    }
                }
            }
            (d, t)
        };
        // Reaching the tensor extent means "fully buffered" in that dim.
        let full_h = delta.h >= extent.h;
        let full_w = delta.w >= extent.w;
        let delta = Dims2::new(delta.h.min(extent.h), delta.w.min(extent.w));
        let tile = Dims2::new(
            tile.h.min(extent.h).max(delta.h),
            tile.w.min(extent.w).max(delta.w),
        );
        schemes.insert(
            u,
            NodeScheme {
                delta,
                tile,
                upd_num: Dims2::new(1, 1),
                full_h,
                full_w,
                boundary_input: !is_member[u.index()],
                interior_consumed: !consumers.is_empty(),
            },
        );
    }

    // Stage 3: co-prime upd_num per dimension via rational propagation.
    let strict = exact;
    for dim in [Dim::H, Dim::W] {
        match solve_upd(graph, &ext, &cons_in, &schemes, dim, strict) {
            Ok(upd) => {
                for (&id, value) in &upd {
                    // cocco-audit: allow(R1) solve_upd returns one entry per ext node, and schemes covers ext
                    let s = schemes.get_mut(&id).expect("scheme exists");
                    match dim {
                        Dim::H => s.upd_num.h = *value,
                        Dim::W => s.upd_num.w = *value,
                    }
                }
            }
            Err(e) => {
                if strict {
                    return Err(e);
                }
                exact = false;
            }
        }
    }

    Ok(ExecutionScheme::new(schemes.into_iter().collect(), exact))
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Dim {
    H,
    W,
}

impl Dim {
    fn delta(self, s: &NodeScheme) -> u32 {
        match self {
            Dim::H => s.delta.h,
            Dim::W => s.delta.w,
        }
    }

    fn full(self, s: &NodeScheme) -> bool {
        match self {
            Dim::H => s.full_h,
            Dim::W => s.full_w,
        }
    }

    fn stride(self, req: EdgeReq) -> Option<u32> {
        match req {
            EdgeReq::Full => None,
            EdgeReq::Sliding(k) => Some(match self {
                Dim::H => k.stride.h,
                Dim::W => k.stride.w,
            }),
        }
    }
}

/// Solves `upd(u)·Δ(u) = upd(v)·Δ(v)·s(v)` for every internal edge `u → v`
/// of one dimension, returning the unique co-prime positive solution.
fn solve_upd(
    graph: &Graph,
    ext: &[NodeId],
    cons_in: &BTreeMap<NodeId, Vec<NodeId>>,
    schemes: &BTreeMap<NodeId, NodeScheme>,
    dim: Dim,
    strict: bool,
) -> Result<BTreeMap<NodeId, u32>, TilingError> {
    // rate(u) = upd(u)·Δ(u), determined up to one scalar per weakly
    // connected component. Edges touching fully-buffered nodes are skipped
    // (their update pattern is "once per elementary op").
    let mut rate: BTreeMap<NodeId, Ratio> = BTreeMap::new();
    for &start in ext {
        if rate.contains_key(&start) {
            continue;
        }
        rate.insert(start, Ratio::from_int(1));
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            let ru = rate[&u];
            // Forward edges u -> v (v consumes u): rate(v) = rate(u) / s(v).
            for &v in &cons_in[&u] {
                if dim.full(&schemes[&u]) || dim.full(&schemes[&v]) {
                    continue;
                }
                let Some(s) = dim.stride(graph.edge_req(u, v)) else {
                    continue;
                };
                let rv = ru.div_int(u64::from(s.max(1)));
                match rate.get(&v) {
                    None => {
                        rate.insert(v, rv);
                        stack.push(v);
                    }
                    Some(existing) if *existing != rv && strict => {
                        return Err(TilingError::InconsistentRates { node: v });
                    }
                    _ => {}
                }
            }
            // Backward edges p -> u (u consumes p): rate(p) = rate(u) · s(u-edge).
            for &p in graph.producers(u) {
                let Some(ps) = schemes.get(&p) else { continue };
                if dim.full(ps) || dim.full(&schemes[&u]) {
                    continue;
                }
                let Some(s) = dim.stride(graph.edge_req(p, u)) else {
                    continue;
                };
                let rp = ru.mul_int(u64::from(s.max(1)));
                match rate.get(&p) {
                    None => {
                        rate.insert(p, rp);
                        stack.push(p);
                    }
                    Some(existing) if *existing != rp && strict => {
                        return Err(TilingError::InconsistentRates { node: p });
                    }
                    _ => {}
                }
            }
        }
    }

    // upd(u) = rate(u) / Δ(u); scale to the least common integer solution.
    let mut upd_ratio: Vec<(NodeId, Ratio)> = Vec::with_capacity(ext.len());
    let mut scale = 1u64;
    for &u in ext {
        let s = &schemes[&u];
        if dim.full(s) {
            upd_ratio.push((u, Ratio::from_int(1)));
            continue;
        }
        let r = rate[&u].div_int(u64::from(dim.delta(s).max(1)));
        scale = lcm(scale, r.den);
        upd_ratio.push((u, r));
    }
    let mut upd: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut all_gcd = 0u64;
    for (u, r) in &upd_ratio {
        let v = r.num.saturating_mul(scale / r.den);
        all_gcd = gcd(all_gcd, v);
        upd.insert(*u, v as u32);
    }
    let g = all_gcd.max(1);
    for v in upd.values_mut() {
        *v = ((u64::from(*v)) / g).max(1) as u32;
    }
    Ok(upd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::MapperPolicy;
    use cocco_graph::{GraphBuilder, Kernel, TensorShape};

    /// The Figure 5 example of the paper as a 1-D problem (height carries
    /// the example; width is a single column).
    ///
    /// Paper wiring: inputs (-2) and (-1); node(0) consumes (-2) with
    /// F=3,s=2; node(1) consumes *both* (-2) and (-1) with F=3,s=1;
    /// node(2) consumes (-1) with F=1,s=1. Convolutions here take a single
    /// producer, so node(1) is expressed as two parallel F=3,s=1 convs
    /// (`n1a` from (-2), `n1b` from (-1)) joined by a point-wise eltwise —
    /// consumption-wise identical to the paper's two-input node(1).
    fn figure5_graph() -> (cocco_graph::Graph, Vec<NodeId>) {
        let conv1d = |f: u32, s: u32, p: u32| cocco_graph::LayerOp::Conv {
            kernel: Kernel::new(Dims2::new(f, 1), Dims2::new(s, 1), Dims2::new(p, 0)),
            c_out: 1,
        };
        let mut b = GraphBuilder::new("fig5");
        let in2 = b.input(TensorShape::new(64, 1, 1)); // node(-2)
        let in1 = b.input(TensorShape::new(64, 1, 1)); // node(-1)
        let _n0 = b.add("n0", conv1d(3, 2, 1), &[in2]).unwrap();
        let n1a = b.add("n1a", conv1d(3, 1, 1), &[in2]).unwrap();
        let n1b = b.add("n1b", conv1d(3, 1, 1), &[in1]).unwrap();
        let _n1 = b.eltwise("n1", &[n1a, n1b]).unwrap();
        let _n2 = b.add("n2", conv1d(1, 1, 0), &[in1]).unwrap();
        let g = b.finish().unwrap();
        let members = g.node_ids().collect();
        (g, members)
    }

    #[test]
    fn figure5_quantities() {
        let (g, members) = figure5_graph();
        let mapper = Mapper::new(MapperPolicy::Tile { rows: 2, cols: 1 });
        let scheme = derive_scheme(&g, &members, &mapper).unwrap();
        assert!(scheme.exact_upd());
        let by_name = |name: &str| {
            let id = g.iter().find(|(_, n)| n.name() == name).unwrap().0;
            *scheme.get(id).unwrap()
        };
        // Output nodes: Δ = x = 2 (stage 1).
        for out in ["n0", "n1", "n2"] {
            let s = by_name(out);
            assert_eq!(s.delta.h, 2, "{out}");
            assert_eq!(s.tile.h, 2, "{out}");
        }
        // The halves of node(1) inherit its published Δ(1) = x(1) = 2.
        for half in ["n1a", "n1b"] {
            let s = by_name(half);
            assert_eq!(s.delta.h, 2, "{half}");
            assert_eq!(s.tile.h, 2, "{half}");
        }
        // Node(-2): Δ = lcm{Δ(0)s(0), Δ(1)s(1)} = lcm{4, 2} = 4;
        //           x = max{f0(2)=5, f1(4)=6} = 6.
        let in2 = by_name("input");
        assert_eq!(in2.delta.h, 4);
        assert_eq!(in2.tile.h, 6);
        // Node(-1): Δ = lcm{Δ(1)s(1), Δ(2)s(2)} = 2;
        //           x = max{f1(2)=4, f2(2)=2} = 4.
        let in1 = by_name("input1");
        assert_eq!(in1.delta.h, 2);
        assert_eq!(in1.tile.h, 4);
        // upd_num: the unique co-prime solution {1, 2, 1, 2, 2} of the
        // paper — node(-2) and node(0) update once per elementary
        // operation, all other nodes twice.
        assert_eq!(in2.upd_num.h, 1);
        assert_eq!(by_name("n0").upd_num.h, 1);
        assert_eq!(in1.upd_num.h, 2);
        assert_eq!(by_name("n1a").upd_num.h, 2);
        assert_eq!(by_name("n1b").upd_num.h, 2);
        assert_eq!(by_name("n1").upd_num.h, 2);
        assert_eq!(by_name("n2").upd_num.h, 2);
    }

    #[test]
    fn chain_tiles_grow_backward() {
        let g = cocco_graph::models::chain(4);
        let members: Vec<_> = g.node_ids().collect();
        let mapper = Mapper::new(MapperPolicy::FullWidthRows { rows: 1 });
        let scheme = derive_scheme(&g, &members, &mapper).unwrap();
        // With 3x3/1 convs each producer needs F−s+Δ = 2+Δ... but Δ stays 1,
        // so x grows by exactly 2 per backward step until clamped.
        let tiles: Vec<u32> = g
            .node_ids()
            .map(|id| scheme.get(id).unwrap().tile.h)
            .collect();
        assert_eq!(tiles, vec![3, 3, 3, 3, 1]);
    }

    #[test]
    fn boundary_producers_are_covered() {
        let g = cocco_graph::models::chain(4);
        // Members: only the last two convs; producer c1 is a boundary input.
        let ids: Vec<_> = g.node_ids().collect();
        let members = vec![ids[3], ids[4]];
        let scheme = derive_scheme(&g, &members, &Mapper::default()).unwrap();
        assert_eq!(scheme.len(), 3);
        let boundary = scheme.get(ids[2]).unwrap();
        assert!(boundary.boundary_input);
        assert!(boundary.interior_consumed);
        assert!(!scheme.get(ids[4]).unwrap().interior_consumed);
    }

    #[test]
    fn global_pool_forces_full_buffering() {
        let mut b = GraphBuilder::new("gp");
        let i = b.input(TensorShape::new(16, 16, 4));
        let c = b.conv("c", i, 4, Kernel::square_same(3, 1)).unwrap();
        let gp = b.global_pool("gp", c).unwrap();
        let _ = gp;
        let g = b.finish().unwrap();
        let members: Vec<_> = g.node_ids().collect();
        let scheme = derive_scheme(&g, &members, &Mapper::default()).unwrap();
        let c_id = g.iter().find(|(_, n)| n.name() == "c").unwrap().0;
        let s = scheme.get(c_id).unwrap();
        assert!(s.full_h && s.full_w);
        assert_eq!(s.tile, Dims2::new(16, 16));
        assert!(!scheme.exact_upd());
    }

    #[test]
    fn stride_two_doubles_producer_delta() {
        let mut b = GraphBuilder::new("s2");
        let i = b.input(TensorShape::new(32, 32, 4));
        let c = b.conv("c", i, 4, Kernel::square_same(3, 2)).unwrap();
        let _ = c;
        let g = b.finish().unwrap();
        let members: Vec<_> = g.node_ids().collect();
        let mapper = Mapper::new(MapperPolicy::Tile { rows: 2, cols: 4 });
        let scheme = derive_scheme(&g, &members, &mapper).unwrap();
        let input = scheme.get(g.input_ids()[0]).unwrap();
        assert_eq!(input.delta.h, 4); // 2 rows out × stride 2
        assert_eq!(input.tile.h, 5); // F − s + Δ = 3 − 2 + 4
        assert_eq!(input.tile.w, 9); // 3 − 2 + 8
    }

    #[test]
    fn empty_members_rejected() {
        let g = cocco_graph::models::chain(2);
        assert_eq!(
            derive_scheme(&g, &[], &Mapper::default()),
            Err(TilingError::EmptySubgraph)
        );
    }

    #[test]
    fn duplicate_members_rejected() {
        let g = cocco_graph::models::chain(2);
        let id = g.node_ids().next().unwrap();
        assert_eq!(
            derive_scheme(&g, &[id, id], &Mapper::default()),
            Err(TilingError::DuplicateMember { node: id })
        );
    }

    #[test]
    fn unknown_member_rejected() {
        let g = cocco_graph::models::chain(2);
        let bogus = NodeId::from_index(99);
        assert_eq!(
            derive_scheme(&g, &[bogus], &Mapper::default()),
            Err(TilingError::UnknownNode { node: bogus })
        );
    }

    #[test]
    fn tile_minus_delta_equals_max_kernel_overlap() {
        // The invariant behind the SIDE region sizing: x − Δ = max(F − s)
        // over consumers (pre-clamping).
        let g = cocco_graph::models::googlenet();
        let members: Vec<_> = g.node_ids().collect();
        let scheme = derive_scheme(&g, &members, &Mapper::default()).unwrap();
        for (id, s) in scheme.iter() {
            if s.full_h || !s.interior_consumed {
                continue;
            }
            let max_overlap = g
                .consumers(id)
                .iter()
                .filter_map(|&v| match g.edge_req(id, v) {
                    EdgeReq::Sliding(k) => Some(k.size.h.saturating_sub(k.stride.h)),
                    EdgeReq::Full => None,
                })
                .max()
                .unwrap_or(0);
            assert!(
                s.overlap_rows() <= max_overlap,
                "node {id}: overlap {} > max F−s {max_overlap}",
                s.overlap_rows()
            );
        }
    }

    #[test]
    fn elementary_ops_cover_tensor() {
        let g = cocco_graph::models::chain(3);
        let members: Vec<_> = g.node_ids().collect();
        let mapper = Mapper::new(MapperPolicy::FullWidthRows { rows: 4 });
        let scheme = derive_scheme(&g, &members, &mapper).unwrap();
        let ops = scheme.elementary_ops(&g);
        assert_eq!(ops.h, 8); // 32 rows / 4 per op
        assert_eq!(ops.w, 1);
    }
}
