//! The production-centric scheme of paper Figure 4(a), for comparison.
//!
//! Production-centric execution fixes the *input* tile sizes and derives the
//! subsequent layers forward: every node produces as much as its producers
//! allow, and results that downstream joins cannot consume yet sit in the
//! buffer as "extra data". The paper's Figure 4 example caches 3 extra
//! elements of Node(2) and 16 extra source elements of Node(1); the tests
//! below reproduce exactly those numbers.

use crate::error::TilingError;
use cocco_graph::{Dims2, EdgeReq, Graph, NodeId};
use std::collections::BTreeMap;

/// Per-node result of the production-centric forward derivation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ProductionNode {
    /// Elements produced (per dimension) in one elementary operation.
    pub produced: Dims2,
    /// Elements actually required (per dimension) to feed the subgraph's
    /// outputs this operation.
    pub needed: Dims2,
}

impl ProductionNode {
    /// Extra cached elements: `produced_area − needed_area` (spatial only;
    /// multiply by channels for bytes).
    pub fn extra_elements(&self) -> u64 {
        self.produced.area().saturating_sub(self.needed.area())
    }
}

/// Result of [`derive_production`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProductionReport {
    entries: Vec<(NodeId, ProductionNode)>,
}

impl ProductionReport {
    /// The derivation result for node `id`, if covered.
    pub fn get(&self, id: NodeId) -> Option<&ProductionNode> {
        self.entries
            .binary_search_by_key(&id, |(n, _)| *n)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Iterates over `(id, node)` pairs in ascending node order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (NodeId, &ProductionNode)> {
        self.entries.iter().map(|(id, s)| (*id, s))
    }

    /// Total spatial elements held in the buffer during one elementary
    /// operation (sum of produced areas; multiply by channels for bytes —
    /// see [`total_buffered_with`](Self::total_buffered_with)).
    pub fn total_buffered(&self) -> u64 {
        self.entries.iter().map(|(_, n)| n.produced.area()).sum()
    }

    /// Total buffered elements weighting each node's area by `channels(id)`.
    pub fn total_buffered_with(&self, channels: impl Fn(NodeId) -> u64) -> u64 {
        self.entries
            .iter()
            .map(|(id, n)| n.produced.area() * channels(*id))
            .sum()
    }

    /// Total extra (produced but not needed) elements across the subgraph.
    pub fn total_extra(&self) -> u64 {
        self.entries.iter().map(|(_, n)| n.extra_elements()).sum()
    }
}

/// Runs the production-centric forward derivation over `members` with the
/// given tile of every boundary/input producer.
///
/// # Errors
///
/// Returns an error if `members` is empty or references unknown nodes.
///
/// # Examples
///
/// ```
/// use cocco_graph::Dims2;
/// use cocco_tiling::production::derive_production;
///
/// let g = cocco_graph::models::diamond();
/// let members: Vec<_> = g.node_ids().collect();
/// let report = derive_production(&g, &members, Dims2::square(5)).unwrap();
/// assert!(report.total_buffered() > 0);
/// ```
pub fn derive_production(
    graph: &Graph,
    members: &[NodeId],
    input_tile: Dims2,
) -> Result<ProductionReport, TilingError> {
    if members.is_empty() {
        return Err(TilingError::EmptySubgraph);
    }
    let n = graph.len();
    let mut is_member = vec![false; n];
    for &m in members {
        if m.index() >= n {
            return Err(TilingError::UnknownNode { node: m });
        }
        if is_member[m.index()] {
            return Err(TilingError::DuplicateMember { node: m });
        }
        is_member[m.index()] = true;
    }
    let mut in_ext = vec![false; n];
    for &m in members {
        in_ext[m.index()] = true;
        for &p in graph.producers(m) {
            in_ext[p.index()] = true;
        }
    }
    let ext: Vec<NodeId> = (0..n)
        .map(NodeId::from_index)
        .filter(|id| in_ext[id.index()])
        .collect();

    // Forward pass: produced extents.
    let mut produced: BTreeMap<NodeId, Dims2> = BTreeMap::new();
    for &u in &ext {
        let shape = graph.node(u).out_shape();
        let extent = Dims2::new(shape.h, shape.w);
        let sources: Vec<NodeId> = graph
            .producers(u)
            .iter()
            .copied()
            .filter(|p| in_ext[p.index()] && is_member[u.index()])
            .collect();
        let p = if sources.is_empty() || !is_member[u.index()] {
            // Boundary producer or source member: gets the input tile.
            Dims2::new(input_tile.h.min(extent.h), input_tile.w.min(extent.w))
        } else {
            let mut acc = extent;
            for s in sources {
                let avail = produced[&s];
                let out = match graph.edge_req(s, u) {
                    EdgeReq::Full => {
                        let src_shape = graph.node(s).out_shape();
                        if avail.h >= src_shape.h && avail.w >= src_shape.w {
                            extent
                        } else {
                            Dims2::new(0, 0)
                        }
                    }
                    EdgeReq::Sliding(k) => Dims2::new(
                        forward_extent(avail.h, k.size.h, k.stride.h),
                        forward_extent(avail.w, k.size.w, k.stride.w),
                    ),
                };
                acc.h = acc.h.min(out.h);
                acc.w = acc.w.min(out.w);
            }
            Dims2::new(acc.h.min(extent.h), acc.w.min(extent.w))
        };
        produced.insert(u, p);
    }

    // Backward pass: needed extents, driven by the subgraph outputs.
    let mut needed: BTreeMap<NodeId, Dims2> = BTreeMap::new();
    for &u in ext.iter().rev() {
        let consumers: Vec<NodeId> = graph
            .consumers(u)
            .iter()
            .copied()
            .filter(|c| is_member[c.index()])
            .collect();
        let need = if consumers.is_empty() {
            produced[&u]
        } else {
            let mut acc = Dims2::new(0, 0);
            for v in consumers {
                let nv = needed[&v];
                let req = match graph.edge_req(u, v) {
                    EdgeReq::Full => {
                        let shape = graph.node(u).out_shape();
                        Dims2::new(shape.h, shape.w)
                    }
                    EdgeReq::Sliding(k) => Dims2::new(
                        backward_extent(nv.h, k.size.h, k.stride.h),
                        backward_extent(nv.w, k.size.w, k.stride.w),
                    ),
                };
                acc.h = acc.h.max(req.h);
                acc.w = acc.w.max(req.w);
            }
            acc
        };
        let p = produced[&u];
        needed.insert(u, Dims2::new(need.h.min(p.h), need.w.min(p.w)));
    }

    let mut entries: Vec<(NodeId, ProductionNode)> = ext
        .iter()
        .map(|&u| {
            (
                u,
                ProductionNode {
                    produced: produced[&u],
                    needed: needed[&u],
                },
            )
        })
        .collect();
    entries.sort_by_key(|(id, _)| *id);
    Ok(ProductionReport { entries })
}

/// Output rows producible from `avail` input rows with window `f`, stride
/// `s` (no padding inside a tile).
fn forward_extent(avail: u32, f: u32, s: u32) -> u32 {
    if avail < f {
        0
    } else {
        (avail - f) / s.max(1) + 1
    }
}

/// Input rows required to produce `rows` output rows.
fn backward_extent(rows: u32, f: u32, s: u32) -> u32 {
    if rows == 0 {
        0
    } else {
        f + (rows - 1) * s.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocco_graph::{GraphBuilder, Kernel, LayerOp, TensorShape};

    /// The paper's Figure 4 subgraph: Node(-1) input, Node(0) 5×5/2,
    /// Node(1) 1×1/1, Node(2) 3×3/2, Node(3) add.
    fn fig4() -> cocco_graph::Graph {
        let mut b = GraphBuilder::new("fig4");
        let i = b.input(TensorShape::new(63, 63, 1));
        let n0 = b
            .add(
                "n0",
                LayerOp::Conv {
                    // pad 1 so the two branches join at the same 31×31.
                    kernel: Kernel::new(Dims2::square(5), Dims2::square(2), Dims2::square(1)),
                    c_out: 1,
                },
                &[i],
            )
            .unwrap();
        let n1 = b
            .add(
                "n1",
                LayerOp::Conv {
                    kernel: Kernel::square_valid(1, 1),
                    c_out: 1,
                },
                &[i],
            )
            .unwrap();
        let n2 = b
            .add(
                "n2",
                LayerOp::Conv {
                    kernel: Kernel::new(Dims2::square(3), Dims2::square(2), Dims2::square(0)),
                    c_out: 1,
                },
                &[n1],
            )
            .unwrap();
        b.eltwise("n3", &[n0, n2]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn figure4_extra_data() {
        let g = fig4();
        let members: Vec<_> = g.node_ids().collect();
        let report = derive_production(&g, &members, Dims2::square(5)).unwrap();
        let by_name = |name: &str| {
            let id = g.iter().find(|(_, n)| n.name() == name).unwrap().0;
            *report.get(id).unwrap()
        };
        // With a 5×5 input tile: Node(0) produces 1×1, Node(1) 5×5,
        // Node(2) 2×2, Node(3) 1×1.
        assert_eq!(by_name("n0").produced, Dims2::square(1));
        assert_eq!(by_name("n1").produced, Dims2::square(5));
        assert_eq!(by_name("n2").produced, Dims2::square(2));
        assert_eq!(by_name("n3").produced, Dims2::square(1));
        // The paper's extra data: 3 elements of Node(2), 16 of Node(1).
        assert_eq!(by_name("n2").extra_elements(), 3);
        assert_eq!(by_name("n1").extra_elements(), 16);
        assert_eq!(by_name("n0").extra_elements(), 0);
    }

    #[test]
    fn production_buffers_at_least_consumption() {
        // For the Figure 4 graph the production-centric scheme caches more
        // data than the consumption-centric scheme with matching output
        // tiles (1×1 at the join).
        let g = fig4();
        let members: Vec<_> = g.node_ids().collect();
        let prod = derive_production(&g, &members, Dims2::square(5)).unwrap();
        let mapper = crate::Mapper::new(crate::MapperPolicy::Tile { rows: 1, cols: 1 });
        let cons = crate::derive_scheme(&g, &members, &mapper).unwrap();
        let cons_total: u64 = cons.iter().map(|(_, s)| s.tile.area()).sum();
        assert!(
            prod.total_buffered() > cons_total,
            "production {} should exceed consumption {}",
            prod.total_buffered(),
            cons_total
        );
    }

    #[test]
    fn needed_never_exceeds_produced() {
        let g = cocco_graph::models::googlenet();
        let members: Vec<_> = g.node_ids().collect();
        let report = derive_production(&g, &members, Dims2::square(8)).unwrap();
        for (_, n) in report.iter() {
            assert!(n.needed.h <= n.produced.h);
            assert!(n.needed.w <= n.produced.w);
        }
    }

    #[test]
    fn empty_members_rejected() {
        let g = cocco_graph::models::chain(2);
        assert!(matches!(
            derive_production(&g, &[], Dims2::square(4)),
            Err(TilingError::EmptySubgraph)
        ));
    }

    #[test]
    fn starved_join_produces_zero() {
        // A tiny input tile cannot feed a 5×5 window: downstream produces 0.
        let g = fig4();
        let members: Vec<_> = g.node_ids().collect();
        let report = derive_production(&g, &members, Dims2::square(3)).unwrap();
        let n3 = g.iter().find(|(_, n)| n.name() == "n3").unwrap().0;
        assert_eq!(report.get(n3).unwrap().produced, Dims2::new(0, 0));
    }
}
