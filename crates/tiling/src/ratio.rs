//! Minimal exact rational arithmetic for the `upd_num` derivation (stage 3).

/// Greatest common divisor (Euclid). `gcd(0, n) = n`.
pub(crate) fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple; saturates rather than overflowing.
pub(crate) fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).saturating_mul(b)
}

/// An exact non-negative rational, always kept in lowest terms.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct Ratio {
    pub num: u64,
    pub den: u64,
}

impl Ratio {
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "ratio denominator must be nonzero");
        let g = gcd(num, den).max(1);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    pub fn from_int(n: u64) -> Self {
        Ratio { num: n, den: 1 }
    }

    pub fn mul_int(self, k: u64) -> Self {
        Ratio::new(self.num.saturating_mul(k), self.den)
    }

    pub fn div_int(self, k: u64) -> Self {
        assert!(k != 0);
        Ratio::new(self.num, self.den.saturating_mul(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(1, 1), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(2, 2), 2);
        assert_eq!(lcm(0, 3), 0);
    }

    #[test]
    fn ratio_normalizes() {
        assert_eq!(Ratio::new(4, 8), Ratio { num: 1, den: 2 });
        assert_eq!(Ratio::new(0, 3), Ratio { num: 0, den: 1 });
    }

    #[test]
    fn ratio_ops() {
        let r = Ratio::new(3, 4);
        assert_eq!(r.mul_int(8), Ratio { num: 6, den: 1 });
        assert_eq!(r.div_int(3), Ratio { num: 1, den: 4 });
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_denominator_panics() {
        Ratio::new(1, 0);
    }
}
