//! The consumption-centric subgraph execution flow of the Cocco paper (§3.1).
//!
//! Executing a multi-layer subgraph as a sequence of *elementary operations*
//! requires knowing, for every node `u`:
//!
//! * the update offset `Δ(u)` — how many fresh output rows/columns each
//!   memory update contributes,
//! * the buffered tile size `x(u)` — how many rows/columns must stay
//!   resident so every consumer's sliding window is satisfied, and
//! * `upd_num(u)` — how many memory updates of `u` one elementary operation
//!   performs (the unique co-prime solution of
//!   `upd_num(v)·Δ(v)·s(v) = upd_num(u)·Δ(u)` along every edge).
//!
//! [`derive_scheme`] computes all three (independently for the height and
//! width dimensions) in reverse topological order:
//!
//! * stage 1 — a [`Mapper`] picks the tiles of the subgraph's *output* nodes;
//! * stage 2 — `Δ(u) = lcm_{v∈ξ(u)}{Δ(v)·s(v)}` and
//!   `x(u) = max_v f_v(Δ(u)/s(v))` with `f_v(t) = F(v) + (t−1)·s(v)`;
//! * stage 3 — `upd_num` via exact rational propagation.
//!
//! The crate also implements the *production-centric* forward derivation of
//! paper Figure 4(a) ([`production`]) so the two schemes can be compared.
//!
//! # Examples
//!
//! Reproducing the paper's Figure 5 example is covered in
//! [`ExecutionScheme`]'s documentation and the crate tests; a minimal run:
//!
//! ```
//! use cocco_tiling::{derive_scheme, Mapper};
//!
//! let graph = cocco_graph::models::diamond();
//! let members: Vec<_> = graph.node_ids().collect();
//! let scheme = derive_scheme(&graph, &members, &Mapper::default()).unwrap();
//! assert_eq!(scheme.len(), graph.len());
//! ```

mod error;
mod flow;
mod mapper;
pub mod production;
mod ratio;
pub mod schedule;
mod scheme;

pub use error::TilingError;
pub use flow::derive_scheme;
pub use mapper::{Mapper, MapperPolicy};
pub use scheme::{ExecutionScheme, NodeScheme};
