//! The derived execution scheme of a subgraph.

use cocco_graph::{Dims2, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Per-node result of the consumption-centric derivation (paper Fig. 5).
///
/// All quantities are expressed in the node's *output* coordinate system,
/// independently for the height and width dimensions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeScheme {
    /// Update offset `Δ`: fresh output rows/columns per memory update.
    pub delta: Dims2,
    /// Buffered tile size `x`: rows/columns that must stay resident.
    pub tile: Dims2,
    /// Memory updates per elementary operation (stage 3, co-prime solution).
    pub upd_num: Dims2,
    /// The whole height extent is resident (`Δ.h` reached the tensor height).
    pub full_h: bool,
    /// The whole width extent is resident.
    pub full_w: bool,
    /// Produced outside the subgraph: its tile is loaded from DRAM.
    pub boundary_input: bool,
    /// Consumed by at least one node inside the subgraph (interior data that
    /// needs MAIN + SIDE regions; pure outputs only need a MAIN region).
    pub interior_consumed: bool,
}

impl NodeScheme {
    /// `true` when the whole tensor is resident in both dimensions.
    pub fn fully_buffered(&self) -> bool {
        self.full_h && self.full_w
    }

    /// Overlap rows retained across the row sweep (`x − Δ` in the height
    /// dimension) — the SIDE-region depth of paper Figure 7.
    pub fn overlap_rows(&self) -> u32 {
        self.tile.h.saturating_sub(self.delta.h)
    }
}

/// The execution scheme of one subgraph: a [`NodeScheme`] for every member
/// and every boundary producer feeding the subgraph.
///
/// Created by [`derive_scheme`](crate::derive_scheme).
///
/// # Examples
///
/// ```
/// use cocco_tiling::{derive_scheme, Mapper, MapperPolicy};
///
/// let graph = cocco_graph::models::chain(3);
/// let members: Vec<_> = graph.node_ids().collect();
/// let mapper = Mapper::new(MapperPolicy::FullWidthRows { rows: 1 });
/// let scheme = derive_scheme(&graph, &members, &mapper).unwrap();
/// for (_, s) in scheme.iter() {
///     assert!(s.tile.h >= s.delta.h);
/// }
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionScheme {
    entries: Vec<(NodeId, NodeScheme)>,
    exact: bool,
}

impl ExecutionScheme {
    pub(crate) fn new(mut entries: Vec<(NodeId, NodeScheme)>, exact: bool) -> Self {
        entries.sort_by_key(|(id, _)| *id);
        Self { entries, exact }
    }

    /// Number of nodes covered (members plus boundary producers).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no nodes are covered (never for schemes produced by
    /// [`derive_scheme`](crate::derive_scheme)).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scheme of node `id`, if covered.
    pub fn get(&self, id: NodeId) -> Option<&NodeScheme> {
        self.entries
            .binary_search_by_key(&id, |(n, _)| *n)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Iterates over `(id, scheme)` in ascending node order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (NodeId, &NodeScheme)> {
        self.entries.iter().map(|(id, s)| (*id, s))
    }

    /// `true` when stage 3 found an exact co-prime `upd_num` solution (no
    /// node was clamped to its tensor extent and all rates were consistent).
    pub fn exact_upd(&self) -> bool {
        self.exact
    }

    /// Number of elementary operations needed to produce the subgraph's
    /// outputs, per dimension: `ceil(extent / (upd·Δ))` evaluated at the
    /// output nodes (max over outputs when clamping made rates inexact).
    pub fn elementary_ops(&self, graph: &Graph) -> Dims2 {
        let mut ops = Dims2::new(1, 1);
        for (id, s) in self.iter() {
            if s.boundary_input || s.interior_consumed {
                continue; // only output nodes define the op count
            }
            let shape = graph.node(id).out_shape();
            let per_op_h = s.upd_num.h.saturating_mul(s.delta.h).max(1);
            let per_op_w = s.upd_num.w.saturating_mul(s.delta.w).max(1);
            ops.h = ops.h.max(shape.h.div_ceil(per_op_h));
            ops.w = ops.w.max(shape.w.div_ceil(per_op_w));
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(delta: u32, tile: u32) -> NodeScheme {
        NodeScheme {
            delta: Dims2::square(delta),
            tile: Dims2::square(tile),
            upd_num: Dims2::square(1),
            full_h: false,
            full_w: false,
            boundary_input: false,
            interior_consumed: false,
        }
    }

    #[test]
    fn get_uses_binary_search() {
        let scheme = ExecutionScheme::new(
            vec![
                (NodeId::from_index(5), dummy(1, 3)),
                (NodeId::from_index(2), dummy(2, 4)),
            ],
            true,
        );
        assert_eq!(scheme.get(NodeId::from_index(2)).unwrap().delta.h, 2);
        assert_eq!(scheme.get(NodeId::from_index(5)).unwrap().tile.h, 3);
        assert!(scheme.get(NodeId::from_index(3)).is_none());
        assert_eq!(scheme.len(), 2);
    }

    #[test]
    fn overlap_rows_saturate() {
        assert_eq!(dummy(4, 2).overlap_rows(), 0);
        assert_eq!(dummy(1, 3).overlap_rows(), 2);
    }
}
