//! # cocco-telemetry — observation-only instrumentation substrate
//!
//! Structured tracing (spans + events), a metrics registry (counters,
//! gauges, fixed-bucket histograms with p50/p90/p99 extraction), and a
//! coarse per-phase wall-time profile — shared by the engine, the
//! searchers, the cost model, the facade, and the CLI.
//!
//! Three design rules, all load-bearing:
//!
//! 1. **Handle-passed, no globals.** [`Telemetry`] is an
//!    `Option<Arc<Sink>>` clone handed down at construction time
//!    (`Engine::with_telemetry`, `Cocco::with_telemetry`, …). Disabled
//!    is the default, and a disabled handle costs one branch per
//!    operation — no clock read, no lock, no allocation — so the 47 ns
//!    cached-score leaf is unaffected.
//! 2. **Observation-only.** Nothing read from a metric, span, or event
//!    ever feeds back into a search decision; seeded runs are
//!    bit-identical with telemetry enabled, disabled, or at different
//!    thread counts (asserted by `tests/tests/telemetry.rs`).
//! 3. **Sole timing authority.** Every wall-clock read in the
//!    workspace lives here ([`Stopwatch`]); the `cocco-audit` D3 rule
//!    plus `audit.toml` enforce that machine-checkably. Other crates
//!    measure by holding a `Stopwatch`, never by calling
//!    `Instant::now` themselves.
//!
//! ## Naming scheme
//!
//! Metric and event names are dot-separated `subsystem.object.metric`
//! paths, lower-case, with histograms suffixed by their unit:
//!
//! - `engine.batch.latency_ns`, `engine.pool.queue_wait_ns`
//! - `engine.pool.dispatched` / `.chunks` / `.inline_batches` (jobs
//!   reaching the pool after the hit prefilter, chunked hand-off
//!   units, and batches the adaptive scheduler ran inline)
//! - `engine.cache.partition.hits` / `.misses` / `.evictions` (and
//!   `…cache.subgraph.*` for the second level)
//! - `engine.cache.l0_hits` / `.l0_publishes` (probes answered by a
//!   worker-local L0 cache, and entries staged for the deterministic
//!   funding-order drain at batch end)
//! - `search.step_ns` (span), `search.improvement` (event),
//!   `search.budget.used` (gauge)
//! - `sim.subgraph_stats_ns` (derivation latency on stats-cache misses)

mod clock;
mod metrics;
mod phase;
mod sink;

pub use clock::Stopwatch;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricEntry, MetricsRegistry, MetricsSnapshot,
    LATENCY_BOUNDS_NS,
};
pub use phase::{Phase, PhaseGuard, PhaseProfile, PhaseSnapshot};
pub use sink::{Event, EventValue, SpanGuard, Telemetry, DEFAULT_EVENT_CAPACITY};
