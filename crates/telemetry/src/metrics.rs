//! Metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones: a crate registers once (or receives a handle) and records with
//! a single relaxed atomic op — no locking, no allocation, no formatting
//! on the hot path. The registry itself is only locked to register a new
//! name or to take a [`MetricsSnapshot`].
//!
//! Snapshots are ordered by name (`BTreeMap` iteration — deterministic,
//! D1-safe) so serialized output is stable and diffable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge handle.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// Stores `v` as the current value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    pub fn raise(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default latency bucket bounds in nanoseconds: powers of two from
/// 256 ns to ~2.3 s, plus an implicit overflow bucket. 24 buckets cover
/// everything from a cached probe to a full batch dispatch; quantiles
/// interpolate within a bucket, so factor-2 bounds resolve p50/p99 to
/// well under a factor of two — plenty for trend lines.
pub const LATENCY_BOUNDS_NS: [u64; 24] = [
    1 << 8,
    1 << 9,
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 21,
    1 << 22,
    1 << 23,
    1 << 24,
    1 << 25,
    1 << 26,
    1 << 27,
    1 << 28,
    1 << 29,
    1 << 30,
    1 << 31,
];

#[derive(Debug)]
struct HistogramInner {
    /// Ascending bucket upper bounds (inclusive); values above the last
    /// bound land in the overflow bucket.
    bounds: Vec<u64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram handle. Recording is two relaxed atomic
/// adds plus a min/max update; bucket search is a branch-free linear
/// scan over at most a few dozen bounds.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds
    /// (an overflow bucket is added automatically).
    pub fn with_bounds(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let h = &*self.inner;
        let idx = h.bounds.partition_point(|&b| b < v);
        h.counts[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy labelled `name`.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let h = &*self.inner;
        let count = h.count.load(Ordering::Relaxed);
        let min = h.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: h.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: h.max.load(Ordering::Relaxed),
            bounds: h.bounds.clone(),
            counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::with_bounds(&LATENCY_BOUNDS_NS)
    }
}

/// One named scalar in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricEntry {
    pub name: String,
    pub value: u64,
}

/// A point-in-time copy of one histogram: bucket bounds, per-bucket
/// counts (last entry is the overflow bucket), and summary moments.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`), linearly interpolated within
    /// the containing bucket; the overflow bucket reports the observed
    /// maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                cum += c;
                continue;
            }
            if cum + c >= rank {
                let Some(&upper) = self.bounds.get(i) else {
                    // Overflow bucket: the best point estimate is the max.
                    return self.max;
                };
                let lower = if i == 0 {
                    self.min.min(upper)
                } else {
                    self.bounds[i - 1]
                };
                let frac = (rank - cum) as f64 / c as f64;
                return lower + ((upper - lower) as f64 * frac) as u64;
            }
            cum += c;
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time, name-ordered copy of every registered metric.
///
/// This is the authoritative export format: `EngineStats` is derived
/// from it as a compatibility view, and `--stats-json` serializes it
/// directly.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<MetricEntry>,
    pub gauges: Vec<MetricEntry>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        lookup(&self.counters, name)
    }

    /// Value of gauge `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        lookup(&self.gauges, name)
    }

    /// Histogram snapshot `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Inserts (or overwrites) counter `name`, keeping name order.
    /// Used by subsystems absorbing ad-hoc atomic counters into the
    /// snapshot at collection time.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        upsert(&mut self.counters, name, value);
    }

    /// Inserts (or overwrites) gauge `name`, keeping name order.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        upsert(&mut self.gauges, name, value);
    }
}

fn lookup(entries: &[MetricEntry], name: &str) -> u64 {
    entries
        .iter()
        .find(|e| e.name == name)
        .map_or(0, |e| e.value)
}

fn upsert(entries: &mut Vec<MetricEntry>, name: &str, value: u64) {
    match entries.binary_search_by(|e| e.name.as_str().cmp(name)) {
        Ok(i) => entries[i].value = value,
        Err(i) => entries.insert(
            i,
            MetricEntry {
                name: name.to_string(),
                value,
            },
        ),
    }
}

/// The registry: named handles, created on first use, snapshotted in
/// name order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// The counter named `name`, registering it if new.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, registering it if new.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, registering it with `bounds` if new
    /// (an existing histogram keeps its original bounds).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .clone()
    }

    /// A point-in-time, name-ordered copy of everything registered.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| MetricEntry {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, g)| MetricEntry {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::default();
        let c = reg.counter("a.count");
        c.add(2);
        c.incr();
        reg.counter("a.count").incr(); // same handle by name
        let g = reg.gauge("a.level");
        g.set(7);
        g.raise(3); // lower → no-op
        g.raise(9);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), 4);
        assert_eq!(snap.gauge("a.level"), 9);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let reg = MetricsRegistry::default();
        reg.counter("z").incr();
        reg.counter("a").incr();
        reg.counter("m").incr();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = Histogram::with_bounds(&[10, 20, 40, 80]);
        for v in [1u64, 5, 12, 15, 18, 25, 30, 35, 50, 100] {
            h.record(v);
        }
        let s = h.snapshot("lat");
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        let p50 = s.p50();
        assert!((10..=20).contains(&p50), "p50={p50}");
        // p99 ranks into the overflow bucket → reports the max.
        assert_eq!(s.p99(), 100);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let s = Histogram::default().snapshot("empty");
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn upsert_keeps_order_and_overwrites() {
        let mut snap = MetricsSnapshot::default();
        snap.set_counter("b", 1);
        snap.set_counter("a", 2);
        snap.set_counter("b", 3);
        let names: Vec<&str> = snap.counters.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(snap.counter("b"), 3);
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let reg = MetricsRegistry::default();
        reg.counter("c").add(5);
        reg.histogram("h", &[1, 2]).record(1);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
