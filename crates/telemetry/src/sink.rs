//! The handle-passed telemetry sink.
//!
//! [`Telemetry`] is a cheap clone (an `Option<Arc<…>>`): subsystems
//! receive one by value and keep it. A **disabled** handle (the
//! default) is `None` — every operation is a single branch that touches
//! no clock, no lock, and no allocation, which is what lets telemetry
//! ride inside the 47 ns cached-score leaf's callers without perturbing
//! them. There is deliberately no global: whoever builds the stack
//! decides which components share a sink.
//!
//! Events are stamped with nanoseconds since the sink's creation
//! (monotonic, run-local — never calendar time) and buffered up to a
//! fixed capacity; overflow increments a drop counter instead of
//! growing without bound.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Serialize, Value};

use crate::clock::Stopwatch;
use crate::metrics::{
    Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, LATENCY_BOUNDS_NS,
};
use crate::phase::{Phase, PhaseGuard, PhaseProfile, PhaseSnapshot};

/// Default event-buffer capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// A field value on an [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum EventValue {
    U64(u64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<u64> for EventValue {
    fn from(v: u64) -> Self {
        EventValue::U64(v)
    }
}

impl From<usize> for EventValue {
    fn from(v: usize) -> Self {
        EventValue::U64(v as u64)
    }
}

impl From<f64> for EventValue {
    fn from(v: f64) -> Self {
        EventValue::F64(v)
    }
}

impl From<&str> for EventValue {
    fn from(v: &str) -> Self {
        EventValue::Str(v.to_string())
    }
}

impl From<bool> for EventValue {
    fn from(v: bool) -> Self {
        EventValue::Bool(v)
    }
}

impl Serialize for EventValue {
    fn to_value(&self) -> Value {
        match self {
            EventValue::U64(v) => Value::U64(*v),
            EventValue::F64(v) => Value::F64(*v),
            EventValue::Str(v) => Value::Str(v.clone()),
            EventValue::Bool(v) => Value::Bool(*v),
        }
    }
}

/// One recorded event: a name, a monotonic timestamp relative to the
/// sink's creation, a sequence number, and free-form fields.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    pub seq: u64,
    pub at_ns: u64,
    pub name: String,
    pub fields: Vec<(String, EventValue)>,
}

impl Serialize for Event {
    /// Flat JSON object — `{"seq":…,"at_ns":…,"name":…,<fields…>}` —
    /// one line of the JSONL export.
    fn to_value(&self) -> Value {
        let mut obj = Vec::with_capacity(3 + self.fields.len());
        obj.push(("seq".to_string(), Value::U64(self.seq)));
        obj.push(("at_ns".to_string(), Value::U64(self.at_ns)));
        obj.push(("name".to_string(), Value::Str(self.name.clone())));
        for (key, value) in &self.fields {
            obj.push((key.clone(), value.to_value()));
        }
        Value::Object(obj)
    }
}

#[derive(Debug)]
struct Sink {
    origin: Stopwatch,
    metrics: MetricsRegistry,
    phases: PhaseProfile,
    events: Mutex<Vec<Event>>,
    seq: AtomicU64,
    capacity: usize,
    dropped: AtomicU64,
}

/// The telemetry handle. `Default`/[`disabled`](Self::disabled) is off;
/// [`enabled`](Self::enabled) allocates a sink. Clones share the sink.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Sink>>,
}

impl Telemetry {
    /// A no-op handle: every operation is one branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An active sink with the default event-buffer capacity.
    pub fn enabled() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An active sink buffering at most `capacity` events (overflow is
    /// counted, not stored).
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Sink {
                origin: Stopwatch::start(),
                metrics: MetricsRegistry::default(),
                phases: PhaseProfile::default(),
                events: Mutex::new(Vec::new()),
                seq: AtomicU64::new(0),
                capacity,
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// True when this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry, when enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|s| &s.metrics)
    }

    /// Counter handle `name`, when enabled. Fetch once and store the
    /// handle; recording through it is lock-free.
    pub fn counter(&self, name: &str) -> Option<Counter> {
        self.registry().map(|r| r.counter(name))
    }

    /// Gauge handle `name`, when enabled.
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        self.registry().map(|r| r.gauge(name))
    }

    /// Histogram handle `name` with the default latency bounds, when
    /// enabled.
    pub fn latency_histogram(&self, name: &str) -> Option<Histogram> {
        self.registry()
            .map(|r| r.histogram(name, &LATENCY_BOUNDS_NS))
    }

    /// Records event `name`; `fields` is only invoked when the handle
    /// is enabled, so callers may build field vectors lazily.
    pub fn emit<F>(&self, name: &str, fields: F)
    where
        F: FnOnce() -> Vec<(&'static str, EventValue)>,
    {
        let Some(sink) = self.inner.as_deref() else {
            return;
        };
        let at_ns = sink.origin.elapsed_nanos();
        let seq = sink.seq.fetch_add(1, Ordering::Relaxed);
        let mut events = sink.events.lock().unwrap();
        if events.len() >= sink.capacity {
            sink.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(Event {
            seq,
            at_ns,
            name: name.to_string(),
            fields: fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        });
    }

    /// Starts a span named `name`: on drop, the elapsed nanoseconds are
    /// recorded into the histogram of the same name. Disabled handles
    /// return a no-op guard without reading the clock.
    pub fn span(&self, name: &str) -> SpanGuard {
        match self.inner.as_deref() {
            None => SpanGuard { active: None },
            Some(sink) => SpanGuard {
                active: Some((
                    sink.metrics.histogram(name, &LATENCY_BOUNDS_NS),
                    Stopwatch::start(),
                )),
            },
        }
    }

    /// Adds `nanos` directly to `phase`'s accumulated time (no-op when
    /// disabled) — for absorbing a duration measured elsewhere, e.g.
    /// crediting the engine's dispatch wall time to the `Eval` phase.
    pub fn add_phase_time(&self, phase: Phase, nanos: u64) {
        if let Some(sink) = self.inner.as_deref() {
            sink.phases.add(phase, nanos);
        }
    }

    /// Starts timing `phase` (no-op guard when disabled).
    pub fn phase(&self, phase: Phase) -> PhaseGuard {
        match self.inner.as_deref() {
            None => PhaseGuard::noop(),
            Some(sink) => sink.phases.time(phase),
        }
    }

    /// The per-phase wall-time profile (zeroed when disabled).
    pub fn phases(&self) -> PhaseSnapshot {
        self.inner
            .as_deref()
            .map(|s| s.phases.snapshot())
            .unwrap_or_default()
    }

    /// A point-in-time metrics snapshot (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner
            .as_deref()
            .map(|s| s.metrics.snapshot())
            .unwrap_or_default()
    }

    /// All buffered events in sequence order.
    pub fn events(&self) -> Vec<Event> {
        let Some(sink) = self.inner.as_deref() else {
            return Vec::new();
        };
        let mut events = sink.events.lock().unwrap().clone();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Events refused because the buffer was full.
    pub fn events_dropped(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |s| s.dropped.load(Ordering::Relaxed))
    }

    /// Writes every buffered event as one JSON object per line.
    /// Returns the number of lines written.
    pub fn export_jsonl<W: Write>(&self, out: &mut W) -> io::Result<usize> {
        let events = self.events();
        for event in &events {
            let line = serde_json::to_string(event)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(events.len())
    }
}

/// RAII span guard: records its duration into a histogram on drop.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(Histogram, Stopwatch)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((hist, sw)) = self.active.take() {
            hist.record(sw.elapsed_nanos());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let mut invoked = false;
        t.emit("never", || {
            invoked = true;
            vec![]
        });
        assert!(!invoked, "field closure must not run when disabled");
        drop(t.span("noop"));
        assert!(t.events().is_empty());
        assert_eq!(t.snapshot(), MetricsSnapshot::default());
        assert_eq!(t.phases(), Default::default());
    }

    #[test]
    fn events_record_in_sequence_order() {
        let t = Telemetry::enabled();
        t.emit("first", || vec![("k", EventValue::from(1u64))]);
        t.emit("second", || vec![("cost", EventValue::from(2.5f64))]);
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "first");
        assert_eq!(events[0].seq, 0);
        assert!(events[1].at_ns >= events[0].at_ns);
        assert_eq!(
            events[1].fields,
            vec![("cost".to_string(), EventValue::F64(2.5))]
        );
    }

    #[test]
    fn overflow_is_counted_not_stored() {
        let t = Telemetry::with_event_capacity(2);
        for _ in 0..5 {
            t.emit("e", Vec::new);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events_dropped(), 3);
    }

    #[test]
    fn spans_feed_the_histogram_of_the_same_name() {
        let t = Telemetry::enabled();
        for _ in 0..3 {
            drop(t.span("step_ns"));
        }
        let snap = t.snapshot();
        let h = snap.histogram("step_ns").expect("histogram registered");
        assert_eq!(h.count, 3);
    }

    #[test]
    fn jsonl_export_is_one_flat_object_per_line() {
        let t = Telemetry::enabled();
        t.emit("improved", || {
            vec![
                ("sample", 7usize.into()),
                ("ok", true.into()),
                ("tag", "ga".into()),
            ]
        });
        let mut buf = Vec::new();
        let lines = t.export_jsonl(&mut buf).unwrap();
        assert_eq!(lines, 1);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.ends_with('\n'));
        let parsed: Value = serde_json::from_str(text.trim_end()).unwrap();
        assert_eq!(parsed.get("name"), Some(&Value::Str("improved".into())));
        assert_eq!(parsed.get("sample"), Some(&Value::U64(7)));
        assert_eq!(parsed.get("ok"), Some(&Value::Bool(true)));
    }
}
