//! Coarse per-phase wall-time profile of an exploration run.
//!
//! Five fixed phases cover the whole `explore()` lifecycle. They are
//! recorded independently — **`Eval` time is contained in `Search`
//! time** (engine dispatches happen inside the search loop), so
//! `search − eval` is the driver's own thinking time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::clock::Stopwatch;

/// A lifecycle phase of one exploration run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Evaluator / context / driver construction.
    Setup,
    /// The search loop (includes `Eval`; the difference is driver time).
    Search,
    /// Engine batch dispatches (parallel scoring).
    Eval,
    /// Persistent cache-file load and save.
    Cache,
    /// Checkpoint capture/save and result serialization.
    Serialize,
}

impl Phase {
    /// All phases, in report order.
    pub const ALL: [Phase; 5] = [
        Phase::Setup,
        Phase::Search,
        Phase::Eval,
        Phase::Cache,
        Phase::Serialize,
    ];

    /// Stable lower-case name (metric/report key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::Search => "search",
            Phase::Eval => "eval",
            Phase::Cache => "cache",
            Phase::Serialize => "serialize",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Setup => 0,
            Phase::Search => 1,
            Phase::Eval => 2,
            Phase::Cache => 3,
            Phase::Serialize => 4,
        }
    }
}

#[derive(Debug, Default)]
struct PhaseNanos {
    nanos: [AtomicU64; 5],
}

/// Accumulated per-phase wall time. Cloning shares the accumulator
/// (handle semantics, like the metric types).
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    inner: Arc<PhaseNanos>,
}

impl PhaseProfile {
    /// Adds `nanos` to `phase`.
    pub fn add(&self, phase: Phase, nanos: u64) {
        self.inner.nanos[phase.index()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Starts timing `phase`; the returned guard records on drop.
    pub fn time(&self, phase: Phase) -> PhaseGuard {
        PhaseGuard {
            active: Some((self.clone(), phase, Stopwatch::start())),
        }
    }

    /// A point-in-time copy in milliseconds.
    pub fn snapshot(&self) -> PhaseSnapshot {
        let ms = |p: Phase| self.inner.nanos[p.index()].load(Ordering::Relaxed) as f64 / 1e6;
        PhaseSnapshot {
            setup_ms: ms(Phase::Setup),
            search_ms: ms(Phase::Search),
            eval_ms: ms(Phase::Eval),
            cache_ms: ms(Phase::Cache),
            serialize_ms: ms(Phase::Serialize),
        }
    }
}

/// RAII guard: adds the elapsed time to its phase when dropped.
/// A no-op guard (from a disabled [`Telemetry`](crate::Telemetry))
/// records nothing and never reads the clock.
#[derive(Debug, Default)]
pub struct PhaseGuard {
    active: Option<(PhaseProfile, Phase, Stopwatch)>,
}

impl PhaseGuard {
    /// A guard that records nothing.
    pub fn noop() -> Self {
        Self::default()
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((profile, phase, sw)) = self.active.take() {
            profile.add(phase, sw.elapsed_nanos());
        }
    }
}

/// Per-phase wall time in milliseconds.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseSnapshot {
    pub setup_ms: f64,
    pub search_ms: f64,
    pub eval_ms: f64,
    pub cache_ms: f64,
    pub serialize_ms: f64,
}

impl PhaseSnapshot {
    /// `(phase name, milliseconds)` rows in report order.
    pub fn rows(&self) -> [(&'static str, f64); 5] {
        [
            ("setup", self.setup_ms),
            ("search", self.search_ms),
            ("eval", self.eval_ms),
            ("cache", self.cache_ms),
            ("serialize", self.serialize_ms),
        ]
    }

    /// Sum over all phases (remember `Eval` ⊂ `Search`).
    pub fn total_ms(&self) -> f64 {
        self.setup_ms + self.search_ms + self.cache_ms + self.serialize_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_into_its_phase() {
        let profile = PhaseProfile::default();
        {
            let _g = profile.time(Phase::Search);
        }
        profile.add(Phase::Eval, 2_000_000);
        let snap = profile.snapshot();
        assert!(snap.search_ms >= 0.0);
        assert!((snap.eval_ms - 2.0).abs() < 1e-9);
        assert_eq!(snap.setup_ms, 0.0);
    }

    #[test]
    fn noop_guard_records_nothing() {
        let _g = PhaseGuard::noop();
    }

    #[test]
    fn clones_share_the_accumulator() {
        let a = PhaseProfile::default();
        let b = a.clone();
        b.add(Phase::Cache, 1_000_000);
        assert!((a.snapshot().cache_ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let profile = PhaseProfile::default();
        profile.add(Phase::Setup, 5_000_000);
        let snap = profile.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: PhaseSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        assert_eq!(snap.rows()[0], ("setup", 5.0));
    }
}
