//! The workspace's wall-clock authority.
//!
//! The `cocco-audit` D3 rule confines `Instant::now` / `SystemTime` to
//! this crate: every other crate that wants to know how long something
//! took goes through a [`Stopwatch`]. That keeps two properties
//! machine-checkable at once:
//!
//! - **Timing never steers search.** A grep for clock reads has exactly
//!   one hit outside audit fixtures — here — so a reviewer (or the audit
//!   gate) can see at a glance that no search decision depends on wall
//!   time.
//! - **Telemetry is observation-only.** All durations flow *out* of this
//!   type into metrics/events; nothing flows back.
//!
//! Only monotonic time is exposed. There is deliberately no calendar
//! clock (`SystemTime`) anywhere in the workspace: events are stamped
//! relative to a run-local origin, which keeps exports diffable across
//! runs.

use std::time::{Duration, Instant};

/// A started monotonic timer.
///
/// ```
/// use cocco_telemetry::Stopwatch;
/// let sw = Stopwatch::start();
/// let nanos = sw.elapsed_nanos();
/// assert!(nanos <= sw.elapsed_nanos());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a timer now.
    ///
    /// This is the only sanctioned wall-clock read in the workspace
    /// (audit rule D3 names `crates/telemetry/` as the sole timing
    /// authority in `audit.toml`).
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`start`](Self::start).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (≈ 585 years).
    pub fn elapsed_nanos(&self) -> u64 {
        let d = self.elapsed();
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed milliseconds as a float (the unit most reports use).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
        assert!(sw.elapsed_ms() >= 0.0);
    }

    #[test]
    fn copies_share_the_origin() {
        let sw = Stopwatch::start();
        let copy = sw;
        assert!(copy.elapsed() >= Duration::ZERO);
        assert!(sw.elapsed() >= Duration::ZERO);
    }
}
