//! Layer operators and per-node metadata.

use crate::error::GraphError;
use crate::graph::NodeId;
use crate::shape::{Dims2, TensorShape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Convolution/pooling window geometry: kernel size, stride and padding.
///
/// Padding is per-side (symmetric), so the output extent along a dimension of
/// input extent `i` is `(i + 2·pad − f) / s + 1`.
///
/// # Examples
///
/// ```
/// use cocco_graph::Kernel;
/// let k = Kernel::square_same(3, 1);
/// assert_eq!(k.out_extent_h(56), 56);
/// let k = Kernel::square_same(3, 2);
/// assert_eq!(k.out_extent_h(56), 28);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Kernel {
    /// Window size `F` per dimension.
    pub size: Dims2,
    /// Stride `s` per dimension.
    pub stride: Dims2,
    /// Symmetric per-side padding per dimension.
    pub pad: Dims2,
}

impl Kernel {
    /// Creates a kernel with explicit size, stride and padding.
    pub fn new(size: Dims2, stride: Dims2, pad: Dims2) -> Self {
        Self { size, stride, pad }
    }

    /// Square `f×f` kernel with stride `s` and "same" padding (`f/2` per
    /// side), the most common configuration in the model zoo.
    pub fn square_same(f: u32, s: u32) -> Self {
        Self {
            size: Dims2::square(f),
            stride: Dims2::square(s),
            pad: Dims2::square(f / 2),
        }
    }

    /// Square `f×f` kernel with stride `s` and no padding.
    pub fn square_valid(f: u32, s: u32) -> Self {
        Self {
            size: Dims2::square(f),
            stride: Dims2::square(s),
            pad: Dims2::square(0),
        }
    }

    /// Pointwise 1×1 kernel with stride 1 (FC layers lower to this).
    pub fn pointwise() -> Self {
        Self::square_valid(1, 1)
    }

    /// Output extent along the height dimension for input extent `i`.
    ///
    /// Saturates at 1 so degenerate windows (kernel larger than the padded
    /// input) still produce a nonempty output; builders validate shapes
    /// before this matters.
    pub fn out_extent_h(&self, i: u32) -> u32 {
        extent(i, self.size.h, self.stride.h, self.pad.h)
    }

    /// Output extent along the width dimension for input extent `i`.
    pub fn out_extent_w(&self, i: u32) -> u32 {
        extent(i, self.size.w, self.stride.w, self.pad.w)
    }

    /// Output spatial extents for the given input spatial extents.
    pub fn out_spatial(&self, i: Dims2) -> Dims2 {
        Dims2 {
            h: self.out_extent_h(i.h),
            w: self.out_extent_w(i.w),
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.size, self.stride)
    }
}

fn extent(i: u32, f: u32, s: u32, p: u32) -> u32 {
    let padded = i + 2 * p;
    if padded < f {
        1
    } else {
        (padded - f) / s.max(1) + 1
    }
}

/// The operator computed by a node.
///
/// Per the paper's methodology (§5.1.1): FC layers are expressed as 1×1
/// [`Conv`](LayerOp::Conv); pooling and element-wise layers are analysed as
/// depth-wise convolutions without weights; activation functions are hidden
/// in the pipeline and not represented.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerOp {
    /// Model input placeholder; produces the externally supplied tensor.
    Input,
    /// Standard convolution producing `c_out` channels (exactly one input).
    Conv {
        /// Window geometry.
        kernel: Kernel,
        /// Output channel count.
        c_out: u32,
    },
    /// Depth-wise convolution: per-channel `F×F` filter, `F·F·C` weights.
    DepthwiseConv {
        /// Window geometry.
        kernel: Kernel,
    },
    /// Pooling (max/average): depth-wise window, no weights.
    Pool {
        /// Window geometry.
        kernel: Kernel,
    },
    /// Global pooling reducing the full spatial extent to 1×1; consumes its
    /// whole input per output element, so the producer must be fully
    /// buffered.
    GlobalPool,
    /// Element-wise n-ary op (residual add, gating multiply, softmax /
    /// normalization when unary). All inputs share one shape; no weights.
    Eltwise,
    /// Channel concatenation; no compute, no weights.
    Concat,
    /// Activation × activation matrix multiply (attention). The first input
    /// streams row-by-row; the second is the stationary operand and must be
    /// fully buffered. No weights.
    MatMul {
        /// When `true`, computes `A·Bᵀ` for `A: (M,1,K)`, `B: (N,1,K)`
        /// (e.g. `Q·Kᵀ`); when `false`, computes `A·B` for `A: (M,1,K)`,
        /// `B: (K,1,N)` (e.g. `scores·V`).
        rhs_transposed: bool,
    },
}

impl LayerOp {
    /// Returns the sliding-window geometry of this operator, if it has one.
    pub fn kernel(&self) -> Option<Kernel> {
        match self {
            LayerOp::Conv { kernel, .. }
            | LayerOp::DepthwiseConv { kernel }
            | LayerOp::Pool { kernel } => Some(*kernel),
            LayerOp::Eltwise | LayerOp::Concat => Some(Kernel::pointwise()),
            LayerOp::Input | LayerOp::GlobalPool | LayerOp::MatMul { .. } => None,
        }
    }

    /// Returns `true` for the model-input placeholder.
    pub fn is_input(&self) -> bool {
        matches!(self, LayerOp::Input)
    }

    /// A short mnemonic used by the DOT exporter and debugging output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LayerOp::Input => "input",
            LayerOp::Conv { .. } => "conv",
            LayerOp::DepthwiseConv { .. } => "dwconv",
            LayerOp::Pool { .. } => "pool",
            LayerOp::GlobalPool => "gpool",
            LayerOp::Eltwise => "eltwise",
            LayerOp::Concat => "concat",
            LayerOp::MatMul { .. } => "matmul",
        }
    }
}

impl fmt::Display for LayerOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerOp::Conv { kernel, c_out } => write!(f, "conv{kernel}->{c_out}"),
            LayerOp::DepthwiseConv { kernel } => write!(f, "dwconv{kernel}"),
            LayerOp::Pool { kernel } => write!(f, "pool{kernel}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// How a consumer node reads the tensor arriving on one of its input edges.
///
/// This drives the consumption-centric backward derivation (paper §3.1): a
/// sliding consumer needs `F + (t−1)·s` producer rows per `t` of its own
/// rows, whereas a full consumer (the stationary operand of an attention
/// matmul, or a global pooling) needs the producer's entire tensor resident.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeReq {
    /// Sliding-window consumption with the given geometry.
    Sliding(Kernel),
    /// The whole producer tensor must be buffered before consumption.
    Full,
}

impl EdgeReq {
    /// The window geometry for sliding consumption, if applicable.
    pub fn kernel(&self) -> Option<Kernel> {
        match self {
            EdgeReq::Sliding(k) => Some(*k),
            EdgeReq::Full => None,
        }
    }
}

/// A node of the computation graph: one layer plus its wiring and the
/// computed output shape.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) op: LayerOp,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) out_shape: TensorShape,
}

impl Node {
    /// Human-readable unique layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator computed by this node.
    pub fn op(&self) -> &LayerOp {
        &self.op
    }

    /// Producer nodes feeding this node, in argument order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Shape of the tensor this node produces.
    pub fn out_shape(&self) -> TensorShape {
        self.out_shape
    }

    /// Number of output elements.
    pub fn out_elements(&self) -> u64 {
        self.out_shape.elements()
    }

    /// How this node consumes the tensor on input edge `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a valid input index of this node.
    pub fn edge_req(&self, idx: usize) -> EdgeReq {
        assert!(idx < self.inputs.len(), "input index {idx} out of range");
        match &self.op {
            LayerOp::GlobalPool => EdgeReq::Full,
            LayerOp::MatMul { .. } => {
                if idx == 0 {
                    EdgeReq::Sliding(Kernel::pointwise())
                } else {
                    EdgeReq::Full
                }
            }
            op => EdgeReq::Sliding(op.kernel().unwrap_or_else(Kernel::pointwise)),
        }
    }

    /// Weight element count (weights are shared across spatial positions).
    pub fn weight_elements(&self, in_shapes: &[TensorShape]) -> u64 {
        match &self.op {
            LayerOp::Conv { kernel, c_out } => {
                let c_in = in_shapes.first().map_or(0, |s| u64::from(s.c));
                kernel.size.area() * c_in * u64::from(*c_out)
            }
            LayerOp::DepthwiseConv { kernel } => {
                let c = in_shapes.first().map_or(0, |s| u64::from(s.c));
                kernel.size.area() * c
            }
            _ => 0,
        }
    }

    /// Multiply-accumulate count (compute-equivalent operations for layers
    /// without true MACs, e.g. pooling windows and element-wise ops).
    pub fn macs(&self, in_shapes: &[TensorShape]) -> u64 {
        let out = self.out_shape;
        match &self.op {
            LayerOp::Input | LayerOp::Concat => 0,
            LayerOp::Conv { kernel, c_out } => {
                let c_in = in_shapes.first().map_or(0, |s| u64::from(s.c));
                out.spatial().area() * u64::from(*c_out) * kernel.size.area() * c_in
            }
            LayerOp::DepthwiseConv { kernel } | LayerOp::Pool { kernel } => {
                out.elements() * kernel.size.area()
            }
            LayerOp::GlobalPool => in_shapes.first().map_or(0, |s| s.elements()),
            LayerOp::Eltwise => out.elements() * in_shapes.len().max(1) as u64,
            LayerOp::MatMul { rhs_transposed } => {
                let m = in_shapes.first().map_or(0, |s| u64::from(s.h));
                let k = in_shapes.first().map_or(0, |s| u64::from(s.c));
                let n = in_shapes.get(1).map_or(0, |s| {
                    if *rhs_transposed {
                        u64::from(s.h)
                    } else {
                        u64::from(s.c)
                    }
                });
                m * k * n
            }
        }
    }

    /// Computes the output shape of `op` given the input shapes, or a
    /// structured error when the wiring is inconsistent.
    pub(crate) fn infer_shape(
        name: &str,
        op: &LayerOp,
        in_shapes: &[TensorShape],
    ) -> Result<TensorShape, GraphError> {
        let one = |shapes: &[TensorShape]| -> Result<TensorShape, GraphError> {
            if shapes.len() == 1 {
                Ok(shapes[0])
            } else {
                Err(GraphError::ArityMismatch {
                    node: name.to_string(),
                    expected: 1,
                    found: shapes.len(),
                })
            }
        };
        match op {
            LayerOp::Input => Err(GraphError::InputHasProducers {
                node: name.to_string(),
            }),
            LayerOp::Conv { kernel, c_out } => {
                let i = one(in_shapes)?;
                let s = kernel.out_spatial(i.spatial());
                Ok(TensorShape::new(s.h, s.w, *c_out))
            }
            LayerOp::DepthwiseConv { kernel } | LayerOp::Pool { kernel } => {
                let i = one(in_shapes)?;
                let s = kernel.out_spatial(i.spatial());
                Ok(TensorShape::new(s.h, s.w, i.c))
            }
            LayerOp::GlobalPool => {
                let i = one(in_shapes)?;
                Ok(TensorShape::new(1, 1, i.c))
            }
            LayerOp::Eltwise => {
                let first = *in_shapes.first().ok_or_else(|| GraphError::ArityMismatch {
                    node: name.to_string(),
                    expected: 1,
                    found: 0,
                })?;
                for s in in_shapes {
                    if *s != first {
                        return Err(GraphError::ShapeMismatch {
                            node: name.to_string(),
                            left: first,
                            right: *s,
                        });
                    }
                }
                Ok(first)
            }
            LayerOp::Concat => {
                let first = *in_shapes.first().ok_or_else(|| GraphError::ArityMismatch {
                    node: name.to_string(),
                    expected: 1,
                    found: 0,
                })?;
                let mut c = 0u32;
                for s in in_shapes {
                    if s.spatial() != first.spatial() {
                        return Err(GraphError::ShapeMismatch {
                            node: name.to_string(),
                            left: first,
                            right: *s,
                        });
                    }
                    c += s.c;
                }
                Ok(TensorShape::new(first.h, first.w, c))
            }
            LayerOp::MatMul { rhs_transposed } => {
                if in_shapes.len() != 2 {
                    return Err(GraphError::ArityMismatch {
                        node: name.to_string(),
                        expected: 2,
                        found: in_shapes.len(),
                    });
                }
                let (a, b) = (in_shapes[0], in_shapes[1]);
                let (k_b, n) = if *rhs_transposed {
                    (b.c, b.h)
                } else {
                    (b.h, b.c)
                };
                if a.c != k_b || a.w != 1 || b.w != 1 {
                    return Err(GraphError::ShapeMismatch {
                        node: name.to_string(),
                        left: a,
                        right: b,
                    });
                }
                Ok(TensorShape::new(a.h, 1, n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(h: u32, w: u32, c: u32) -> TensorShape {
        TensorShape::new(h, w, c)
    }

    #[test]
    fn kernel_extents_same_padding() {
        let k = Kernel::square_same(7, 2);
        assert_eq!(k.out_extent_h(224), 112);
        let k = Kernel::square_same(3, 1);
        assert_eq!(k.out_extent_h(13), 13);
    }

    #[test]
    fn kernel_extents_valid_padding() {
        let k = Kernel::square_valid(2, 2);
        assert_eq!(k.out_extent_h(56), 28);
        let k = Kernel::square_valid(3, 2);
        assert_eq!(k.out_extent_h(7), 3);
    }

    #[test]
    fn kernel_never_yields_zero_extent() {
        let k = Kernel::square_valid(7, 1);
        assert_eq!(k.out_extent_h(3), 1);
    }

    #[test]
    fn conv_shape_and_weights() {
        let op = LayerOp::Conv {
            kernel: Kernel::square_same(3, 1),
            c_out: 64,
        };
        let out = Node::infer_shape("c", &op, &[shape(56, 56, 32)]).unwrap();
        assert_eq!(out, shape(56, 56, 64));
        let node = Node {
            name: "c".into(),
            op,
            inputs: vec![NodeId::from_index(0)],
            out_shape: out,
        };
        assert_eq!(node.weight_elements(&[shape(56, 56, 32)]), 9 * 32 * 64);
        assert_eq!(node.macs(&[shape(56, 56, 32)]), 56 * 56 * 64 * 9 * 32);
    }

    #[test]
    fn depthwise_keeps_channels() {
        let op = LayerOp::DepthwiseConv {
            kernel: Kernel::square_same(3, 2),
        };
        let out = Node::infer_shape("d", &op, &[shape(56, 56, 32)]).unwrap();
        assert_eq!(out, shape(28, 28, 32));
    }

    #[test]
    fn pool_has_no_weights() {
        let op = LayerOp::Pool {
            kernel: Kernel::square_valid(2, 2),
        };
        let node = Node {
            name: "p".into(),
            op: op.clone(),
            inputs: vec![NodeId::from_index(0)],
            out_shape: Node::infer_shape("p", &op, &[shape(8, 8, 16)]).unwrap(),
        };
        assert_eq!(node.weight_elements(&[shape(8, 8, 16)]), 0);
    }

    #[test]
    fn eltwise_requires_matching_shapes() {
        let err = Node::infer_shape("e", &LayerOp::Eltwise, &[shape(8, 8, 16), shape(8, 8, 8)]);
        assert!(matches!(err, Err(GraphError::ShapeMismatch { .. })));
        let ok = Node::infer_shape("e", &LayerOp::Eltwise, &[shape(8, 8, 16), shape(8, 8, 16)]);
        assert_eq!(ok.unwrap(), shape(8, 8, 16));
    }

    #[test]
    fn concat_sums_channels() {
        let out = Node::infer_shape(
            "cat",
            &LayerOp::Concat,
            &[shape(8, 8, 16), shape(8, 8, 8), shape(8, 8, 4)],
        )
        .unwrap();
        assert_eq!(out, shape(8, 8, 28));
    }

    #[test]
    fn matmul_shapes_attention() {
        // Q·Kᵀ: (seq,1,d) × (seq,1,d) -> (seq,1,seq)
        let q = TensorShape::seq(64, 512);
        let k = TensorShape::seq(64, 512);
        let out = Node::infer_shape(
            "qk",
            &LayerOp::MatMul {
                rhs_transposed: true,
            },
            &[q, k],
        )
        .unwrap();
        assert_eq!(out, TensorShape::seq(64, 64));
        // scores·V: (seq,1,seq) × (seq,1,d) -> (seq,1,d)
        let v = TensorShape::seq(64, 512);
        let out2 = Node::infer_shape(
            "av",
            &LayerOp::MatMul {
                rhs_transposed: false,
            },
            &[out, v],
        )
        .unwrap();
        assert_eq!(out2, TensorShape::seq(64, 512));
    }

    #[test]
    fn matmul_macs() {
        let a = TensorShape::seq(64, 512);
        let b = TensorShape::seq(64, 512);
        let op = LayerOp::MatMul {
            rhs_transposed: true,
        };
        let node = Node {
            name: "qk".into(),
            op: op.clone(),
            inputs: vec![NodeId::from_index(0), NodeId::from_index(1)],
            out_shape: Node::infer_shape("qk", &op, &[a, b]).unwrap(),
        };
        assert_eq!(node.macs(&[a, b]), 64 * 512 * 64);
    }

    #[test]
    fn matmul_edge_reqs() {
        let op = LayerOp::MatMul {
            rhs_transposed: true,
        };
        let a = TensorShape::seq(4, 8);
        let node = Node {
            name: "m".into(),
            op: op.clone(),
            inputs: vec![NodeId::from_index(0), NodeId::from_index(1)],
            out_shape: Node::infer_shape("m", &op, &[a, a]).unwrap(),
        };
        assert!(matches!(node.edge_req(0), EdgeReq::Sliding(_)));
        assert_eq!(node.edge_req(1), EdgeReq::Full);
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(LayerOp::Eltwise.mnemonic(), "eltwise");
        assert_eq!(
            LayerOp::Conv {
                kernel: Kernel::pointwise(),
                c_out: 1
            }
            .to_string(),
            "conv1x1/1x1->1"
        );
    }
}
