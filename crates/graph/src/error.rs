//! Structured errors for graph construction.

use crate::shape::TensorShape;
use std::error::Error;
use std::fmt;

/// Error raised while building or validating a computation graph.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// The graph has no model-input placeholder node.
    NoInput,
    /// A node references a producer created after itself (builder misuse).
    NotTopological {
        /// Offending node name.
        node: String,
    },
    /// A node references an id that does not exist in the builder.
    UnknownNode {
        /// Offending node name.
        node: String,
    },
    /// A node received the wrong number of inputs.
    ArityMismatch {
        /// Offending node name.
        node: String,
        /// Expected input count.
        expected: usize,
        /// Actual input count.
        found: usize,
    },
    /// Two input tensors that must agree have different shapes.
    ShapeMismatch {
        /// Offending node name.
        node: String,
        /// First shape.
        left: TensorShape,
        /// Conflicting shape.
        right: TensorShape,
    },
    /// An `Input` node was given producers.
    InputHasProducers {
        /// Offending node name.
        node: String,
    },
    /// A layer name was used twice.
    DuplicateName {
        /// The duplicated name.
        node: String,
    },
    /// A tensor dimension is zero.
    DegenerateShape {
        /// Offending node name.
        node: String,
        /// The degenerate shape.
        shape: TensorShape,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::NoInput => write!(f, "graph has no input node"),
            GraphError::NotTopological { node } => {
                write!(f, "node `{node}` consumes a node created after it")
            }
            GraphError::UnknownNode { node } => {
                write!(f, "node `{node}` references an unknown producer")
            }
            GraphError::ArityMismatch {
                node,
                expected,
                found,
            } => write!(
                f,
                "node `{node}` expected {expected} input(s), found {found}"
            ),
            GraphError::ShapeMismatch { node, left, right } => {
                write!(f, "node `{node}` input shapes disagree: {left} vs {right}")
            }
            GraphError::InputHasProducers { node } => {
                write!(f, "input node `{node}` must not have producers")
            }
            GraphError::DuplicateName { node } => {
                write!(f, "layer name `{node}` used more than once")
            }
            GraphError::DegenerateShape { node, shape } => {
                write!(f, "node `{node}` has a zero-sized shape {shape}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = GraphError::ShapeMismatch {
            node: "add1".into(),
            left: TensorShape::new(8, 8, 16),
            right: TensorShape::new(8, 8, 8),
        };
        let msg = e.to_string();
        assert!(msg.contains("add1"));
        assert!(msg.starts_with(char::is_lowercase));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync>(_: E) {}
        takes_error(GraphError::Empty);
    }
}
