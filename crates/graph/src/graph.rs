//! The computation graph: an immutable DAG of layers in topological order.

use crate::error::GraphError;
use crate::layer::{EdgeReq, Node};
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (layer) in a [`Graph`].
///
/// Node ids double as topological positions: the [`GraphBuilder`] only lets a
/// node consume already-created nodes, so `a.index() < b.index()` whenever
/// there is a path from `a` to `b`.
///
/// [`GraphBuilder`]: crate::GraphBuilder
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// The position of this node in the graph's topological order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An immutable DNN computation graph `G = (V, E)`.
///
/// Nodes are layers; an edge `(u, v)` means the output of layer `u` is an
/// input of layer `v` (paper §4.1.1). Nodes are stored in topological order,
/// and consumer lists, input shapes, weight and MAC counts are precomputed so
/// that the cost evaluator can run at design-space-exploration rates.
///
/// Construct graphs with [`GraphBuilder`](crate::GraphBuilder) or a model-zoo
/// constructor from [`models`](crate::models).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
    consumers: Vec<Vec<NodeId>>,
    weight_elems: Vec<u64>,
    macs: Vec<u64>,
    edge_count: usize,
}

impl Graph {
    pub(crate) fn from_nodes(name: String, nodes: Vec<Node>) -> Result<Self, GraphError> {
        if nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        let mut edge_count = 0;
        for (idx, node) in nodes.iter().enumerate() {
            for &input in &node.inputs {
                if input.index() >= idx {
                    return Err(GraphError::NotTopological {
                        node: node.name.clone(),
                    });
                }
                consumers[input.index()].push(NodeId::from_index(idx));
                edge_count += 1;
            }
        }
        if !nodes.iter().any(|n| n.op.is_input()) {
            return Err(GraphError::NoInput);
        }
        let weight_elems = nodes
            .iter()
            .map(|n| {
                let shapes = in_shapes_of(&nodes, n);
                n.weight_elements(&shapes)
            })
            .collect();
        let macs = nodes
            .iter()
            .map(|n| {
                let shapes = in_shapes_of(&nodes, n);
                n.macs(&shapes)
            })
            .collect();
        Ok(Self {
            name,
            nodes,
            consumers,
            weight_elems,
            macs,
            edge_count,
        })
    }

    /// The model name (e.g. `"resnet50"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes (layers).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no nodes (never true for graphs built
    /// through [`GraphBuilder`](crate::GraphBuilder)).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> NodeIter<'_> {
        NodeIter {
            graph: self,
            next: 0,
        }
    }

    /// All node ids in topological order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Consumers of `id` (nodes that read its output tensor).
    pub fn consumers(&self, id: NodeId) -> &[NodeId] {
        &self.consumers[id.index()]
    }

    /// Producers of `id` (its input nodes, in argument order).
    pub fn producers(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].inputs
    }

    /// Ids of the model-input placeholder nodes.
    pub fn input_ids(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.op.is_input())
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of model outputs (nodes with no consumers).
    pub fn output_ids(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|id| self.consumers(*id).is_empty())
            .collect()
    }

    /// Shapes of the tensors arriving at `id`, in argument order.
    pub fn in_shapes(&self, id: NodeId) -> Vec<TensorShape> {
        in_shapes_of(&self.nodes, &self.nodes[id.index()])
    }

    /// Weight element count of node `id` (0 for weight-free layers).
    pub fn weight_elements(&self, id: NodeId) -> u64 {
        self.weight_elems[id.index()]
    }

    /// Output element count of node `id`.
    pub fn out_elements(&self, id: NodeId) -> u64 {
        self.nodes[id.index()].out_shape.elements()
    }

    /// MAC (compute-equivalent) count of node `id`.
    pub fn macs(&self, id: NodeId) -> u64 {
        self.macs[id.index()]
    }

    /// Total weight elements over all layers.
    pub fn total_weight_elements(&self) -> u64 {
        self.weight_elems.iter().sum()
    }

    /// Total MACs over all layers (one inference pass).
    pub fn total_macs(&self) -> u64 {
        self.macs.iter().sum()
    }

    /// How consumer `consumer` reads the tensor produced by `producer`.
    ///
    /// When a producer feeds the same consumer through several arguments the
    /// strictest requirement ([`EdgeReq::Full`] over sliding) is returned.
    ///
    /// # Panics
    ///
    /// Panics if there is no edge `producer -> consumer`.
    pub fn edge_req(&self, producer: NodeId, consumer: NodeId) -> EdgeReq {
        let node = self.node(consumer);
        let mut best: Option<EdgeReq> = None;
        for (idx, &input) in node.inputs.iter().enumerate() {
            if input == producer {
                let req = node.edge_req(idx);
                best = Some(match (best, req) {
                    (Some(EdgeReq::Full), _) | (_, EdgeReq::Full) => EdgeReq::Full,
                    (_, sliding) => sliding,
                });
            }
        }
        best.unwrap_or_else(|| panic!("no edge {producer} -> {consumer}"))
    }

    /// Depth (longest path from any input, in edges) of every node; used by
    /// the Irregular-NN DP baseline and the fixed-L fusion experiment.
    pub fn depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.len()];
        for (id, node) in self.iter() {
            let d = node
                .inputs
                .iter()
                .map(|p| depth[p.index()] + 1)
                .max()
                .unwrap_or(0);
            depth[id.index()] = d;
        }
        depth
    }

    /// Checks that `ids` (any order) forms a weakly-connected subgraph.
    pub fn is_connected_subset(&self, ids: &[NodeId]) -> bool {
        if ids.is_empty() {
            return false;
        }
        if ids.len() == 1 {
            return true;
        }
        let member: std::collections::HashSet<NodeId> = ids.iter().copied().collect();
        let mut seen = std::collections::HashSet::with_capacity(ids.len());
        let mut stack = vec![ids[0]];
        seen.insert(ids[0]);
        while let Some(id) = stack.pop() {
            for &n in self.producers(id).iter().chain(self.consumers(id).iter()) {
                if member.contains(&n) && seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        seen.len() == ids.len()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nodes, {} edges, {:.1} MMACs, {:.1} K weight elems)",
            self.name,
            self.len(),
            self.edge_count(),
            self.total_macs() as f64 / 1e6,
            self.total_weight_elements() as f64 / 1e3
        )
    }
}

fn in_shapes_of(nodes: &[Node], node: &Node) -> Vec<TensorShape> {
    node.inputs
        .iter()
        .map(|p| nodes[p.index()].out_shape)
        .collect()
}

/// Iterator over `(NodeId, &Node)` in topological order; created by
/// [`Graph::iter`].
#[derive(Debug)]
pub struct NodeIter<'a> {
    graph: &'a Graph,
    next: usize,
}

impl<'a> Iterator for NodeIter<'a> {
    type Item = (NodeId, &'a Node);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next < self.graph.nodes.len() {
            let id = NodeId::from_index(self.next);
            self.next += 1;
            Some((id, self.graph.node(id)))
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.graph.nodes.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NodeIter<'_> {}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, Kernel, TensorShape};

    fn diamond() -> crate::Graph {
        let mut b = GraphBuilder::new("diamond");
        let i = b.input(TensorShape::new(16, 16, 8));
        let a = b.conv("a", i, 8, Kernel::square_same(3, 1)).unwrap();
        let l = b.conv("l", a, 8, Kernel::square_same(3, 1)).unwrap();
        let r = b.conv("r", a, 8, Kernel::square_same(1, 1)).unwrap();
        let _s = b.eltwise("s", &[l, r]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn topological_invariant() {
        let g = diamond();
        for (id, node) in g.iter() {
            for p in node.inputs() {
                assert!(p.index() < id.index());
            }
        }
    }

    #[test]
    fn consumers_are_inverse_of_producers() {
        let g = diamond();
        for id in g.node_ids() {
            for &c in g.consumers(id) {
                assert!(g.producers(c).contains(&id));
            }
            for &p in g.producers(id) {
                assert!(g.consumers(p).contains(&id));
            }
        }
    }

    #[test]
    fn inputs_and_outputs() {
        let g = diamond();
        assert_eq!(g.input_ids().len(), 1);
        let outs = g.output_ids();
        assert_eq!(outs.len(), 1);
        assert_eq!(g.node(outs[0]).name(), "s");
    }

    #[test]
    fn depths_follow_longest_path() {
        let g = diamond();
        let d = g.depths();
        assert_eq!(d, vec![0, 1, 2, 2, 3]);
    }

    #[test]
    fn connected_subset_checks() {
        let g = diamond();
        let ids = g.node_ids().collect::<Vec<_>>();
        assert!(g.is_connected_subset(&ids));
        // l and r are not directly connected...
        assert!(!g.is_connected_subset(&[ids[2], ids[3]]));
        // ...but together with their shared producer they are.
        assert!(g.is_connected_subset(&[ids[1], ids[2], ids[3]]));
        assert!(!g.is_connected_subset(&[]));
    }

    #[test]
    fn totals_accumulate() {
        let g = diamond();
        let per_node: u64 = g.node_ids().map(|id| g.macs(id)).sum();
        assert_eq!(per_node, g.total_macs());
        assert!(g.total_weight_elements() > 0);
    }

    #[test]
    fn display_mentions_name() {
        let g = diamond();
        assert!(g.to_string().contains("diamond"));
    }
}
