//! Seeded Watts–Strogatz random-graph generator used by the RandWire models.
//!
//! RandWire (Xie et al., ICCV'19) samples a WS(N, K, P) small-world graph per
//! stage and converts it to a DAG by orienting every edge from the lower to
//! the higher node index. The paper evaluates the *small* and *regular*
//! regimes with WS(32, 4, 0.75); we reproduce that generator here with an
//! explicit seed so experiments are deterministic.

use rand::Rng;

/// A directed edge of the generated DAG (`from < to` always holds).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WsEdge {
    /// Source node index.
    pub from: u32,
    /// Destination node index (strictly greater than `from`).
    pub to: u32,
}

/// Watts–Strogatz small-world graph generator.
///
/// # Examples
///
/// ```
/// use cocco_graph::WattsStrogatz;
/// use rand::SeedableRng;
///
/// let ws = WattsStrogatz::new(32, 4, 0.75);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let edges = ws.generate(&mut rng);
/// assert!(edges.iter().all(|e| e.from < e.to));
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WattsStrogatz {
    n: u32,
    k: u32,
    p: f64,
}

impl WattsStrogatz {
    /// Creates a WS(n, k, p) generator.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`, `k` is zero or odd, `k >= n`, or `p` is not within
    /// `[0, 1]` — these are static configuration mistakes.
    pub fn new(n: u32, k: u32, p: f64) -> Self {
        assert!(n >= 3, "WS graph needs at least 3 nodes");
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "WS degree k must be even and >= 2"
        );
        assert!(k < n, "WS degree k must be below n");
        assert!(
            (0.0..=1.0).contains(&p),
            "rewire probability must be in [0,1]"
        );
        Self { n, k, p }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.n
    }

    /// Samples one graph and returns its DAG edges, deduplicated and sorted.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<WsEdge> {
        let n = self.n as usize;
        // adjacency[i] holds the ring/rewired neighbours of i (undirected).
        let mut adj: Vec<std::collections::BTreeSet<u32>> =
            vec![std::collections::BTreeSet::new(); n];
        let connect = |adj: &mut Vec<std::collections::BTreeSet<u32>>, a: u32, b: u32| {
            adj[a as usize].insert(b);
            adj[b as usize].insert(a);
        };
        // Ring lattice: each node to its k/2 clockwise neighbours.
        for i in 0..self.n {
            for j in 1..=(self.k / 2) {
                connect(&mut adj, i, (i + j) % self.n);
            }
        }
        // Rewire each clockwise edge with probability p.
        for i in 0..self.n {
            for j in 1..=(self.k / 2) {
                let old = (i + j) % self.n;
                if rng.gen::<f64>() >= self.p {
                    continue;
                }
                // Pick a new endpoint distinct from i and not already linked.
                // A full node would loop forever; skip it (matches networkx).
                if adj[i as usize].len() as u32 >= self.n - 1 {
                    continue;
                }
                let mut new = rng.gen_range(0..self.n);
                while new == i || adj[i as usize].contains(&new) {
                    new = rng.gen_range(0..self.n);
                }
                adj[i as usize].remove(&old);
                adj[old as usize].remove(&i);
                connect(&mut adj, i, new);
            }
        }
        // Orient: low index -> high index.
        let mut edges: Vec<WsEdge> = Vec::new();
        for (i, neigh) in adj.iter().enumerate() {
            for &j in neigh {
                if (i as u32) < j {
                    edges.push(WsEdge {
                        from: i as u32,
                        to: j,
                    });
                }
            }
        }
        edges.sort();
        edges.dedup();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_rewire_yields_ring_lattice() {
        let ws = WattsStrogatz::new(8, 4, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let edges = ws.generate(&mut rng);
        // Ring lattice with k=4: each node connects to +1 and +2 => n*k/2 edges.
        assert_eq!(edges.len(), 8 * 2);
        assert!(edges.contains(&WsEdge { from: 0, to: 1 }));
        assert!(edges.contains(&WsEdge { from: 0, to: 2 }));
        // Wrap-around edges become (low, high).
        assert!(edges.contains(&WsEdge { from: 0, to: 7 }));
    }

    #[test]
    fn deterministic_under_seed() {
        let ws = WattsStrogatz::new(32, 4, 0.75);
        let a = ws.generate(&mut StdRng::seed_from_u64(42));
        let b = ws.generate(&mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let ws = WattsStrogatz::new(32, 4, 0.75);
        let a = ws.generate(&mut StdRng::seed_from_u64(1));
        let b = ws.generate(&mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn edge_count_preserved_by_rewiring() {
        // Rewiring replaces edges one-for-one (unless a node saturates),
        // so the count stays n*k/2 for sparse graphs.
        let ws = WattsStrogatz::new(32, 4, 1.0);
        let edges = ws.generate(&mut StdRng::seed_from_u64(3));
        assert_eq!(edges.len(), 32 * 2);
    }

    #[test]
    fn edges_are_dag_oriented() {
        let ws = WattsStrogatz::new(32, 4, 0.75);
        for seed in 0..10 {
            let edges = ws.generate(&mut StdRng::seed_from_u64(seed));
            assert!(edges.iter().all(|e| e.from < e.to));
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_degree_rejected() {
        WattsStrogatz::new(8, 3, 0.5);
    }
}
