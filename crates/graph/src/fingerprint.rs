//! 128-bit node-set fingerprints — the precomputed cache identity of a
//! subgraph.
//!
//! A [`NodeSetFp`] condenses a set of [`NodeId`]s into 128 bits by summing
//! (wrapping) two independently mixed 64-bit hashes per node. The sum is
//! **commutative and invertible**: member order never matters (two listings
//! of the same set always collide, which is exactly right — per-subgraph
//! evaluation is a function of the *set*), and single nodes can be added or
//! removed in O(1), so a fingerprint can be maintained incrementally while
//! a partition mutates instead of being re-derived from member vectors on
//! every cache probe.
//!
//! Equality of fingerprints is treated as equality of the underlying sets.
//! With 128 uniformly mixed bits an accidental collision needs on the order
//! of 2^64 distinct subgraphs (birthday bound) — unreachable for any
//! realistic exploration, and the same trust model as content-addressed
//! storage.

use std::hash::{BuildHasherDefault, Hasher};

use crate::graph::NodeId;

/// `splitmix64` finalizer: a cheap, high-quality 64-bit mixer — the single
/// mixing primitive every fingerprint-derived identity in the workspace
/// (node fingerprints, cache-key folds) is built from, exported so the
/// domains can never drift apart.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The two per-node hash lanes, derived from independent salts so the two
/// 64-bit halves of a fingerprint never correlate.
#[inline]
fn node_lanes(node: NodeId) -> (u64, u64) {
    let i = node.index() as u64;
    (
        mix64(i ^ 0x9E37_79B9_7F4A_7C15),
        mix64(i ^ 0xC2B2_AE3D_27D4_EB4F),
    )
}

/// A 128-bit content fingerprint of a set of graph nodes.
///
/// # Examples
///
/// ```
/// use cocco_graph::{NodeId, NodeSetFp};
///
/// let a = NodeId::from_index(3);
/// let b = NodeId::from_index(7);
/// // Order-independent: {a, b} == {b, a}.
/// assert_eq!(NodeSetFp::of_members(&[a, b]), NodeSetFp::of_members(&[b, a]));
/// // Incremental: insert/remove are exact inverses.
/// let mut fp = NodeSetFp::of_members(&[a, b]);
/// fp.remove(b);
/// assert_eq!(fp, NodeSetFp::of_members(&[a]));
/// fp.insert(b);
/// assert_eq!(fp, NodeSetFp::of_members(&[a, b]));
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeSetFp {
    /// First 64-bit lane.
    pub lo: u64,
    /// Second, independently salted 64-bit lane.
    pub hi: u64,
}

impl NodeSetFp {
    /// The fingerprint of the empty set.
    pub const EMPTY: NodeSetFp = NodeSetFp { lo: 0, hi: 0 };

    /// The fingerprint of `members` (order-independent, no allocation).
    pub fn of_members(members: &[NodeId]) -> Self {
        let mut fp = Self::EMPTY;
        for &m in members {
            fp.insert(m);
        }
        fp
    }

    /// Adds one node to the set.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        let (lo, hi) = node_lanes(node);
        self.lo = self.lo.wrapping_add(lo);
        self.hi = self.hi.wrapping_add(hi);
    }

    /// Removes one node from the set (the exact inverse of
    /// [`insert`](Self::insert)).
    #[inline]
    pub fn remove(&mut self, node: NodeId) {
        let (lo, hi) = node_lanes(node);
        self.lo = self.lo.wrapping_sub(lo);
        self.hi = self.hi.wrapping_sub(hi);
    }
}

/// A pass-through hasher for keys that *are already* uniform hashes
/// (fingerprints, fingerprint-derived cache keys): instead of re-running
/// SipHash over the words, it folds them with two cheap operations. Using
/// it as a `HashMap` build-hasher removes the per-probe hash walk that a
/// default-hashed map would pay.
#[derive(Clone, Default)]
pub struct FpHasher {
    state: u64,
}

impl Hasher for FpHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only reached by non-u64 key components (none in practice).
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    #[inline]
    fn write_u64(&mut self, word: u64) {
        self.state = self.state.rotate_left(29) ^ word;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// The `BuildHasher` for fingerprint-keyed maps.
pub type BuildFpHasher = BuildHasherDefault<FpHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn ids(indices: &[usize]) -> Vec<NodeId> {
        indices.iter().map(|&i| NodeId::from_index(i)).collect()
    }

    #[test]
    fn order_independent_and_boundary_sensitive() {
        let a = NodeSetFp::of_members(&ids(&[0, 1, 2]));
        let b = NodeSetFp::of_members(&ids(&[2, 0, 1]));
        assert_eq!(a, b);
        assert_ne!(a, NodeSetFp::of_members(&ids(&[0, 1])));
        assert_ne!(a, NodeSetFp::of_members(&ids(&[0, 1, 3])));
        assert_ne!(NodeSetFp::of_members(&ids(&[0])), NodeSetFp::EMPTY);
    }

    #[test]
    fn insert_remove_round_trip() {
        let members = ids(&[5, 9, 13, 21]);
        let mut fp = NodeSetFp::of_members(&members);
        fp.remove(members[2]);
        fp.remove(members[0]);
        assert_eq!(fp, NodeSetFp::of_members(&ids(&[9, 21])));
        fp.insert(members[0]);
        fp.insert(members[2]);
        assert_eq!(fp, NodeSetFp::of_members(&members));
    }

    #[test]
    fn distinct_small_sets_do_not_collide() {
        // Every subset of 10 nodes: 1024 fingerprints, all distinct.
        let mut seen = HashSet::new();
        for mask in 0u32..1024 {
            let members: Vec<NodeId> = (0..10)
                .filter(|i| mask & (1 << i) != 0)
                .map(NodeId::from_index)
                .collect();
            let fp = NodeSetFp::of_members(&members);
            assert!(seen.insert((fp.lo, fp.hi)), "collision at mask {mask}");
        }
    }

    #[test]
    fn fp_hasher_spreads_keys() {
        // Fingerprint-keyed maps must not degenerate into one bucket.
        let mut map: std::collections::HashMap<NodeSetFp, usize, BuildFpHasher> =
            Default::default();
        for i in 0..256 {
            map.insert(NodeSetFp::of_members(&ids(&[i])), i);
        }
        assert_eq!(map.len(), 256);
        for i in 0..256 {
            assert_eq!(map[&NodeSetFp::of_members(&ids(&[i]))], i);
        }
    }
}
