//! Computation-graph IR and DNN model zoo for the Cocco framework.
//!
//! A DNN model is represented as a directed acyclic [`Graph`] whose nodes are
//! layers ([`LayerOp`]) and whose edges carry activation tensors. Following
//! the paper ("Cocco: Hardware-Mapping Co-Exploration towards Memory
//! Capacity-Communication Optimization", ASPLOS'24 §5.1.1):
//!
//! * fully-connected layers are lowered to 1×1 convolutions,
//! * pooling and element-wise layers are analysed as depth-wise convolutions
//!   without weights,
//! * scalar post-processing (activation functions) is hidden in the pipeline
//!   and carries no cost.
//!
//! The crate ships shape-faithful constructors for every workload the paper
//! evaluates: VGG16, ResNet-50/152, GoogleNet, NasNet-A, Transformer, GPT and
//! seeded RandWire graphs (small/regular regimes).
//!
//! # Examples
//!
//! ```
//! use cocco_graph::{GraphBuilder, Kernel, TensorShape};
//!
//! # fn main() -> Result<(), cocco_graph::GraphError> {
//! let mut b = GraphBuilder::new("toy");
//! let input = b.input(TensorShape::new(32, 32, 3));
//! let c1 = b.conv("c1", input, 16, Kernel::square_same(3, 1))?;
//! let c2 = b.conv("c2", c1, 16, Kernel::square_same(3, 1))?;
//! let sum = b.eltwise("add", &[c1, c2])?;
//! let graph = b.finish()?;
//! assert_eq!(graph.len(), 4);
//! assert_eq!(graph.node(sum).out_shape(), TensorShape::new(32, 32, 16));
//! # Ok(())
//! # }
//! ```

mod builder;
mod dot;
mod error;
mod fingerprint;
mod graph;
mod layer;
pub mod models;
mod randgraph;
mod shape;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use fingerprint::{mix64, BuildFpHasher, FpHasher, NodeSetFp};
pub use graph::{Graph, NodeId, NodeIter};
pub use layer::{EdgeReq, Kernel, LayerOp, Node};
pub use randgraph::{WattsStrogatz, WsEdge};
pub use shape::{Dims2, TensorShape};
