//! VGG16 — the paper's representative *plain* structure.

use crate::{Graph, GraphBuilder, Kernel, TensorShape};

/// Builds VGG16 (Simonyan & Zisserman, ICLR'15) for 224×224×3 inputs.
///
/// The 13 convolution layers use 3×3/1 kernels with same padding; the three
/// classifier FC layers are lowered per the paper: the first as a 7×7 valid
/// convolution over the 7×7×512 feature map and the rest as 1×1 convolutions.
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::vgg16();
/// assert_eq!(g.name(), "vgg16");
/// // 13 convs + 5 pools + 3 FC + input = 22 nodes.
/// assert_eq!(g.len(), 22);
/// ```
pub fn vgg16() -> Graph {
    let mut b = GraphBuilder::new("vgg16");
    let mut x = b.input(TensorShape::new(224, 224, 3));
    let cfg: &[&[u32]] = &[
        &[64, 64],
        &[128, 128],
        &[256, 256, 256],
        &[512, 512, 512],
        &[512, 512, 512],
    ];
    for (si, widths) in cfg.iter().enumerate() {
        for (ci, &w) in widths.iter().enumerate() {
            x = b
                .conv(
                    format!("conv{}_{}", si + 1, ci + 1),
                    x,
                    w,
                    Kernel::square_same(3, 1),
                )
                .expect("vgg16 conv");
        }
        x = b
            .pool(format!("pool{}", si + 1), x, Kernel::square_valid(2, 2))
            .expect("vgg16 pool");
    }
    // Classifier: FC4096 (as 7x7 valid conv), FC4096, FC1000.
    x = b
        .conv("fc6", x, 4096, Kernel::square_valid(7, 1))
        .expect("vgg16 fc6");
    x = b.fc("fc7", x, 4096).expect("vgg16 fc7");
    b.fc("fc8", x, 1000).expect("vgg16 fc8");
    b.finish().expect("vgg16 graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_reference() {
        let g = vgg16();
        // Find pool5: 7x7x512.
        let pool5 = g
            .iter()
            .find(|(_, n)| n.name() == "pool5")
            .map(|(_, n)| n.out_shape())
            .unwrap();
        assert_eq!(pool5, TensorShape::new(7, 7, 512));
        let fc8 = g
            .iter()
            .find(|(_, n)| n.name() == "fc8")
            .map(|(_, n)| n.out_shape())
            .unwrap();
        assert_eq!(fc8, TensorShape::new(1, 1, 1000));
    }

    #[test]
    fn parameter_count_close_to_reference() {
        // VGG16 has ~138.4 M parameters (ignoring biases we model ~138.3 M).
        let g = vgg16();
        let params = g.total_weight_elements();
        assert!(
            (130_000_000..145_000_000).contains(&params),
            "unexpected parameter count {params}"
        );
    }

    #[test]
    fn mac_count_close_to_reference() {
        // VGG16 is ~15.5 GMACs at 224x224.
        let g = vgg16();
        let gmacs = g.total_macs() as f64 / 1e9;
        assert!((14.0..17.0).contains(&gmacs), "unexpected GMACs {gmacs}");
    }

    #[test]
    fn is_a_pure_chain() {
        let g = vgg16();
        for id in g.node_ids() {
            assert!(g.consumers(id).len() <= 1);
        }
    }
}
