//! ResNet-50/152 — the paper's representative *residual* structures.

use crate::{Graph, GraphBuilder, Kernel, NodeId, TensorShape};

/// Builds ResNet-50 (He et al., CVPR'16) for 224×224×3 inputs.
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::resnet50();
/// assert_eq!(g.name(), "resnet50");
/// ```
pub fn resnet50() -> Graph {
    resnet("resnet50", &[3, 4, 6, 3])
}

/// Builds ResNet-152 (He et al., CVPR'16) for 224×224×3 inputs.
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::resnet152();
/// assert!(g.len() > cocco_graph::models::resnet50().len());
/// ```
pub fn resnet152() -> Graph {
    resnet("resnet152", &[3, 8, 36, 3])
}

fn resnet(name: &str, blocks: &[usize; 4]) -> Graph {
    let mut b = GraphBuilder::new(name);
    let input = b.input(TensorShape::new(224, 224, 3));
    let c1 = b
        .conv("conv1", input, 64, Kernel::square_same(7, 2))
        .expect("conv1");
    let mut x = b
        .pool("pool1", c1, Kernel::square_same(3, 2))
        .expect("pool1");

    let widths = [64u32, 128, 256, 512];
    for (stage, (&n_blocks, &width)) in blocks.iter().zip(widths.iter()).enumerate() {
        let stride = if stage == 0 { 1 } else { 2 };
        for block in 0..n_blocks {
            x = bottleneck(
                &mut b,
                &format!("s{}b{}", stage + 2, block + 1),
                x,
                width,
                if block == 0 { stride } else { 1 },
                block == 0,
            );
        }
    }
    let gap = b.global_pool("gap", x).expect("gap");
    b.fc("fc", gap, 1000).expect("fc");
    b.finish().expect("resnet graph")
}

/// Bottleneck residual block: 1×1 → 3×3 → 1×1(×4) with identity or
/// projection shortcut.
fn bottleneck(
    b: &mut GraphBuilder,
    prefix: &str,
    x: NodeId,
    width: u32,
    stride: u32,
    project: bool,
) -> NodeId {
    let c1 = b
        .conv(format!("{prefix}_c1"), x, width, Kernel::square_valid(1, 1))
        .expect("bottleneck c1");
    let c2 = b
        .conv(
            format!("{prefix}_c2"),
            c1,
            width,
            Kernel::square_same(3, stride),
        )
        .expect("bottleneck c2");
    let c3 = b
        .conv(
            format!("{prefix}_c3"),
            c2,
            width * 4,
            Kernel::square_valid(1, 1),
        )
        .expect("bottleneck c3");
    let shortcut = if project {
        b.conv(
            format!("{prefix}_sc"),
            x,
            width * 4,
            Kernel {
                size: crate::Dims2::square(1),
                stride: crate::Dims2::square(stride),
                pad: crate::Dims2::square(0),
            },
        )
        .expect("bottleneck shortcut")
    } else {
        x
    };
    b.eltwise(format!("{prefix}_add"), &[c3, shortcut])
        .expect("bottleneck add")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_parameter_count() {
        // ResNet-50 has ~25.6 M parameters.
        let g = resnet50();
        let params = g.total_weight_elements();
        assert!(
            (23_000_000..27_000_000).contains(&params),
            "unexpected parameter count {params}"
        );
    }

    #[test]
    fn resnet50_mac_count() {
        // ResNet-50 is ~4.1 GMACs at 224x224.
        let g = resnet50();
        let gmacs = g.total_macs() as f64 / 1e9;
        assert!((3.5..4.6).contains(&gmacs), "unexpected GMACs {gmacs}");
    }

    #[test]
    fn resnet152_parameter_count() {
        // ResNet-152 has ~60.2 M parameters.
        let g = resnet152();
        let params = g.total_weight_elements();
        assert!(
            (55_000_000..65_000_000).contains(&params),
            "unexpected parameter count {params}"
        );
    }

    #[test]
    fn residual_adds_have_two_inputs() {
        let g = resnet50();
        let adds = g.iter().filter(|(_, n)| n.name().ends_with("_add")).count();
        assert_eq!(adds, 3 + 4 + 6 + 3);
        for (_, n) in g.iter().filter(|(_, n)| n.name().ends_with("_add")) {
            assert_eq!(n.inputs().len(), 2);
        }
    }

    #[test]
    fn stage_shapes() {
        let g = resnet50();
        let shape_of = |name: &str| {
            g.iter()
                .find(|(_, n)| n.name() == name)
                .map(|(_, n)| n.out_shape())
                .unwrap()
        };
        assert_eq!(shape_of("pool1"), TensorShape::new(56, 56, 64));
        assert_eq!(shape_of("s2b3_add"), TensorShape::new(56, 56, 256));
        assert_eq!(shape_of("s3b4_add"), TensorShape::new(28, 28, 512));
        assert_eq!(shape_of("s4b6_add"), TensorShape::new(14, 14, 1024));
        assert_eq!(shape_of("s5b3_add"), TensorShape::new(7, 7, 2048));
    }
}
