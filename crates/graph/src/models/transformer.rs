//! Transformer and GPT — the paper's large multi-branch sequence models.
//!
//! Following the paper's lowering, every linear projection is a 1×1
//! convolution over the feature dimension, the two attention matmuls are
//! activation×activation [`MatMul`](crate::LayerOp::MatMul) nodes without
//! weights, and softmax/LayerNorm are element-wise nodes. Heads are folded
//! into the full-width projections (head count does not change shapes or
//! traffic at this granularity).

use crate::{Graph, GraphBuilder, NodeId, TensorShape};

/// Builds the Transformer encoder (Vaswani et al., NIPS'17 "base"):
/// 6 layers, d_model = 512, d_ff = 2048, sequence length 128.
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::transformer();
/// assert_eq!(g.name(), "transformer");
/// ```
pub fn transformer() -> Graph {
    attention_stack("transformer", 6, 512, 2048, 128, None)
}

/// Builds GPT (Radford & Narasimhan 2018): 12 decoder blocks,
/// d_model = 768, d_ff = 3072, sequence length 512, with the LM head.
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::gpt();
/// assert!(g.total_weight_elements() > 80_000_000);
/// ```
pub fn gpt() -> Graph {
    attention_stack("gpt", 12, 768, 3072, 512, Some(40_000))
}

fn attention_stack(
    name: &str,
    layers: usize,
    d_model: u32,
    d_ff: u32,
    seq: u32,
    lm_head: Option<u32>,
) -> Graph {
    let mut b = GraphBuilder::new(name);
    let mut x = b.input(TensorShape::seq(seq, d_model));
    for l in 0..layers {
        x = block(&mut b, &format!("l{l}"), x, d_model, d_ff);
    }
    if let Some(vocab) = lm_head {
        b.fc("lm_head", x, vocab).expect("lm head");
    }
    b.finish().expect("attention stack graph")
}

/// One pre-LN attention block: QKV → QKᵀ → softmax → AV → proj → residual →
/// FFN → residual.
fn block(b: &mut GraphBuilder, prefix: &str, x: NodeId, d_model: u32, d_ff: u32) -> NodeId {
    let q = b.fc(format!("{prefix}_q"), x, d_model).expect("q");
    let k = b.fc(format!("{prefix}_k"), x, d_model).expect("k");
    let v = b.fc(format!("{prefix}_v"), x, d_model).expect("v");
    let scores = b
        .matmul(format!("{prefix}_qk"), q, k, true)
        .expect("scores");
    let soft = b
        .eltwise(format!("{prefix}_softmax"), &[scores])
        .expect("softmax");
    let att = b
        .matmul(format!("{prefix}_av"), soft, v, false)
        .expect("av");
    let proj = b.fc(format!("{prefix}_proj"), att, d_model).expect("proj");
    let res1 = b
        .eltwise(format!("{prefix}_add1"), &[x, proj])
        .expect("residual 1");
    let ff1 = b.fc(format!("{prefix}_ff1"), res1, d_ff).expect("ff1");
    let ff2 = b.fc(format!("{prefix}_ff2"), ff1, d_model).expect("ff2");
    b.eltwise(format!("{prefix}_add2"), &[res1, ff2])
        .expect("residual 2")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformer_parameter_count() {
        // Base encoder: 6 * (4*512^2 + 2*512*2048) ≈ 18.9 M.
        let g = transformer();
        let params = g.total_weight_elements();
        assert!(
            (17_000_000..21_000_000).contains(&params),
            "unexpected parameter count {params}"
        );
    }

    #[test]
    fn gpt_parameter_count() {
        // GPT-1 blocks: 12 * (4*768^2 + 2*768*3072) ≈ 85 M + LM head ~31 M.
        let g = gpt();
        let params = g.total_weight_elements();
        assert!(
            (100_000_000..130_000_000).contains(&params),
            "unexpected parameter count {params}"
        );
    }

    #[test]
    fn attention_shapes() {
        let g = transformer();
        let shape_of = |name: &str| {
            g.iter()
                .find(|(_, n)| n.name() == name)
                .map(|(_, n)| n.out_shape())
                .unwrap()
        };
        assert_eq!(shape_of("l0_qk"), TensorShape::seq(128, 128));
        assert_eq!(shape_of("l0_av"), TensorShape::seq(128, 512));
        assert_eq!(shape_of("l5_add2"), TensorShape::seq(128, 512));
    }

    #[test]
    fn matmuls_have_no_weights() {
        let g = transformer();
        for (id, n) in g.iter() {
            if n.name().ends_with("_qk") || n.name().ends_with("_av") {
                assert_eq!(g.weight_elements(id), 0, "{}", n.name());
            }
        }
    }

    #[test]
    fn residual_diamonds_exist() {
        // x fans out to q, k, v and the residual add: fanout 4.
        let g = transformer();
        let input = g.input_ids()[0];
        assert_eq!(g.consumers(input).len(), 4);
    }
}
