//! MobileNetV2 — the inverted-residual structure the paper cites among its
//! motivating topologies; a useful extra workload because its depth-wise
//! separable blocks stress both the utilization model and the tiling flow.

use crate::{Graph, GraphBuilder, Kernel, NodeId, TensorShape};

/// Builds MobileNetV2 (Sandler et al., CVPR'18) for 224×224×3 inputs.
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::mobilenet_v2();
/// assert_eq!(g.name(), "mobilenet-v2");
/// ```
pub fn mobilenet_v2() -> Graph {
    let mut b = GraphBuilder::new("mobilenet-v2");
    let input = b.input(TensorShape::new(224, 224, 3));
    let mut x = b
        .conv("stem", input, 32, Kernel::square_same(3, 2))
        .expect("stem");
    let mut c_in = 32u32;
    // (expansion t, output channels c, repeats n, first stride s)
    let blocks: [(u32, u32, u32, u32); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut idx = 0;
    for (t, c, n, s) in blocks {
        for rep in 0..n {
            let stride = if rep == 0 { s } else { 1 };
            x = inverted_residual(&mut b, &format!("ir{idx}"), x, c_in, c, t, stride);
            c_in = c;
            idx += 1;
        }
    }
    let head = b
        .conv("head", x, 1280, Kernel::square_valid(1, 1))
        .expect("head");
    let gap = b.global_pool("gap", head).expect("gap");
    b.fc("fc", gap, 1000).expect("fc");
    b.finish().expect("mobilenet-v2 graph")
}

/// Inverted residual: 1×1 expand → 3×3 depth-wise → 1×1 project (linear),
/// with an identity shortcut when the shape is preserved.
fn inverted_residual(
    b: &mut GraphBuilder,
    prefix: &str,
    x: NodeId,
    c_in: u32,
    c_out: u32,
    t: u32,
    stride: u32,
) -> NodeId {
    let mut y = x;
    if t != 1 {
        y = b
            .conv(
                format!("{prefix}_expand"),
                y,
                c_in * t,
                Kernel::square_valid(1, 1),
            )
            .expect("expand");
    }
    y = b
        .dwconv(format!("{prefix}_dw"), y, Kernel::square_same(3, stride))
        .expect("depthwise");
    let proj = b
        .conv(
            format!("{prefix}_proj"),
            y,
            c_out,
            Kernel::square_valid(1, 1),
        )
        .expect("project");
    if stride == 1 && c_in == c_out {
        b.eltwise(format!("{prefix}_add"), &[x, proj])
            .expect("residual add")
    } else {
        proj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerOp;

    #[test]
    fn parameter_count() {
        // MobileNetV2 has ~3.4-3.5 M parameters.
        let g = mobilenet_v2();
        let params = g.total_weight_elements();
        assert!(
            (3_000_000..3_900_000).contains(&params),
            "unexpected parameter count {params}"
        );
    }

    #[test]
    fn mac_count() {
        // ~300 MMACs at 224x224.
        let g = mobilenet_v2();
        let mmacs = g.total_macs() as f64 / 1e6;
        assert!((250.0..400.0).contains(&mmacs), "unexpected MMACs {mmacs}");
    }

    #[test]
    fn depthwise_blocks_present() {
        let g = mobilenet_v2();
        let dws = g
            .iter()
            .filter(|(_, n)| matches!(n.op(), LayerOp::DepthwiseConv { .. }))
            .count();
        assert_eq!(dws, 17); // one per inverted residual
    }

    #[test]
    fn residual_adds_only_on_shape_preserving_blocks() {
        let g = mobilenet_v2();
        let adds = g.iter().filter(|(_, n)| n.name().ends_with("_add")).count();
        // repeats with stride 1 and c_in == c_out: 1+2+3+2+2 = 10.
        assert_eq!(adds, 10);
    }

    #[test]
    fn final_shape() {
        let g = mobilenet_v2();
        let head = g
            .iter()
            .find(|(_, n)| n.name() == "head")
            .map(|(_, n)| n.out_shape())
            .unwrap();
        assert_eq!(head, TensorShape::new(7, 7, 1280));
    }
}
