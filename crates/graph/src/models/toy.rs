//! Small synthetic graphs used by tests, examples and documentation.

use crate::{Graph, GraphBuilder, Kernel, TensorShape};

/// A plain chain of `n` 3×3 convolutions over a `32×32×16` tensor.
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::chain(4);
/// assert_eq!(g.len(), 5); // input + 4 convs
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain(n: usize) -> Graph {
    assert!(n > 0, "chain needs at least one layer");
    let mut b = GraphBuilder::new(format!("chain{n}"));
    let mut x = b.input(TensorShape::new(32, 32, 16));
    for i in 0..n {
        x = b
            .conv(format!("c{i}"), x, 16, Kernel::square_same(3, 1))
            .expect("chain conv");
    }
    b.finish().expect("chain graph")
}

/// A residual diamond: input → a → {left, right} → add.
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::diamond();
/// assert_eq!(g.len(), 5);
/// ```
pub fn diamond() -> Graph {
    let mut b = GraphBuilder::new("diamond");
    let i = b.input(TensorShape::new(32, 32, 16));
    let a = b.conv("a", i, 16, Kernel::square_same(3, 1)).expect("a");
    let l = b.conv("l", a, 16, Kernel::square_same(3, 1)).expect("l");
    let r = b.conv("r", a, 16, Kernel::square_valid(1, 1)).expect("r");
    b.eltwise("add", &[l, r]).expect("add");
    b.finish().expect("diamond graph")
}

/// A two-branch graph with different kernel sizes and strides per branch,
/// mirroring the Figure 4 subgraph of the paper (5×5/2 and 3×3/2 paths
/// joining in an add).
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::branchy();
/// assert_eq!(g.output_ids().len(), 1);
/// ```
pub fn branchy() -> Graph {
    let mut b = GraphBuilder::new("branchy");
    let i = b.input(TensorShape::new(64, 64, 8));
    let n0 = b.conv("n0", i, 8, Kernel::square_same(5, 2)).expect("n0");
    let n1 = b.conv("n1", i, 8, Kernel::square_same(1, 1)).expect("n1");
    let n2 = b.conv("n2", n1, 8, Kernel::square_same(3, 2)).expect("n2");
    b.eltwise("n3", &[n0, n2]).expect("n3");
    b.finish().expect("branchy graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_linear() {
        let g = chain(6);
        assert!(g.node_ids().all(|id| g.consumers(id).len() <= 1));
    }

    #[test]
    fn branchy_shapes_join() {
        let g = branchy();
        let out = g.output_ids()[0];
        assert_eq!(g.node(out).out_shape(), TensorShape::new(32, 32, 8));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_chain_panics() {
        chain(0);
    }
}
