//! RandWire — randomly wired networks (Xie et al., ICCV'19), the paper's
//! representative irregular structures, generated from seeded Watts–Strogatz
//! graphs.

use crate::randgraph::WattsStrogatz;
use crate::{Graph, GraphBuilder, Kernel, NodeId, TensorShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which RandWire configuration regime to instantiate (per Xie et al. §4).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RandWireRegime {
    /// Small-compute regime: two stem convolutions, three random stages,
    /// base width 78.
    Small,
    /// Regular-compute regime: one stem convolution, four random stages,
    /// base width 109.
    Regular,
}

/// Builds RandWire-A: the small regime with the paper's fixed seed.
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::randwire_a();
/// assert_eq!(g.name(), "randwire-a");
/// ```
pub fn randwire_a() -> Graph {
    randwire(RandWireRegime::Small, 0xC0CC0)
}

/// Builds RandWire-B: the regular regime with the paper's fixed seed.
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::randwire_b();
/// assert_eq!(g.name(), "randwire-b");
/// ```
pub fn randwire_b() -> Graph {
    randwire(RandWireRegime::Regular, 0xC0CC1)
}

/// Builds a RandWire network for `regime` with WS(32, 4, 0.75) stages and a
/// deterministic `seed`.
///
/// Each random-stage node aggregates its in-edges with an element-wise sum
/// and applies a 3×3 convolution; stage entry nodes (no in-edges) read the
/// stage input with stride 2; stage outputs are averaged (element-wise) into
/// a single tensor.
pub fn randwire(regime: RandWireRegime, seed: u64) -> Graph {
    let (name, base, stem2, stages) = match regime {
        RandWireRegime::Small => ("randwire-a", 78u32, true, vec![1u32, 2, 4]),
        RandWireRegime::Regular => ("randwire-b", 109u32, false, vec![1u32, 2, 4, 8]),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let ws = WattsStrogatz::new(32, 4, 0.75);

    let mut b = GraphBuilder::new(name);
    let input = b.input(TensorShape::new(224, 224, 3));
    let mut x = b
        .conv("stem1", input, base / 2, Kernel::square_same(3, 2))
        .expect("stem1");
    if stem2 {
        x = b
            .conv("stem2", x, base, Kernel::square_same(3, 2))
            .expect("stem2");
    }
    for (si, mult) in stages.iter().enumerate() {
        let edges = ws.generate(&mut rng);
        x = random_stage(
            &mut b,
            &format!("st{}", si + 1),
            x,
            base * mult,
            &edges,
            ws.nodes(),
        );
    }
    let head = b
        .conv("head", x, 1280, Kernel::square_valid(1, 1))
        .expect("head");
    let gap = b.global_pool("gap", head).expect("gap");
    b.fc("fc", gap, 1000).expect("fc");
    b.finish().expect("randwire graph")
}

fn random_stage(
    b: &mut GraphBuilder,
    prefix: &str,
    stage_in: NodeId,
    width: u32,
    edges: &[crate::randgraph::WsEdge],
    n_nodes: u32,
) -> NodeId {
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n_nodes as usize];
    let mut has_succ = vec![false; n_nodes as usize];
    for e in edges {
        preds[e.to as usize].push(e.from);
        has_succ[e.from as usize] = true;
    }
    let mut built: Vec<NodeId> = Vec::with_capacity(n_nodes as usize);
    #[allow(clippy::needless_range_loop)] // `built` grows as we iterate
    for i in 0..n_nodes as usize {
        let node = if preds[i].is_empty() {
            // Entry node: read the stage input with stride 2.
            b.conv(
                format!("{prefix}_n{i}"),
                stage_in,
                width,
                Kernel::square_same(3, 2),
            )
            .expect("stage entry conv")
        } else {
            let ins: Vec<NodeId> = preds[i].iter().map(|&p| built[p as usize]).collect();
            let agg = if ins.len() == 1 {
                ins[0]
            } else {
                b.eltwise(format!("{prefix}_n{i}_sum"), &ins)
                    .expect("stage aggregate")
            };
            b.conv(
                format!("{prefix}_n{i}"),
                agg,
                width,
                Kernel::square_same(3, 1),
            )
            .expect("stage conv")
        };
        built.push(node);
    }
    let sinks: Vec<NodeId> = (0..n_nodes as usize)
        .filter(|&i| !has_succ[i])
        .map(|i| built[i])
        .collect();
    if sinks.len() == 1 {
        sinks[0]
    } else {
        b.eltwise(format!("{prefix}_out"), &sinks)
            .expect("stage output average")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_are_deterministic() {
        let a1 = randwire_a();
        let a2 = randwire_a();
        assert_eq!(a1.len(), a2.len());
        let names1: Vec<_> = a1.iter().map(|(_, n)| n.name().to_string()).collect();
        let names2: Vec<_> = a2.iter().map(|(_, n)| n.name().to_string()).collect();
        assert_eq!(names1, names2);
    }

    #[test]
    fn regimes_differ() {
        let a = randwire_a();
        let b = randwire_b();
        assert_ne!(a.len(), b.len());
        assert!(b.total_macs() > a.total_macs());
    }

    #[test]
    fn stage_widths_scale() {
        let g = randwire_a();
        let st1 = g
            .iter()
            .find(|(_, n)| n.name() == "st1_n0")
            .map(|(_, n)| n.out_shape())
            .unwrap();
        let st3 = g
            .iter()
            .find(|(_, n)| n.name() == "st3_n0")
            .map(|(_, n)| n.out_shape())
            .unwrap();
        assert_eq!(st1.c, 78);
        assert_eq!(st3.c, 78 * 4);
    }

    #[test]
    fn is_genuinely_irregular() {
        let g = randwire_a();
        // Random wiring should create nodes with fanout >= 3 somewhere.
        let max_fanout = g.node_ids().map(|id| g.consumers(id).len()).max().unwrap();
        assert!(max_fanout >= 3, "max fanout {max_fanout}");
        assert!(g.len() > 100);
    }

    #[test]
    fn custom_seed_changes_topology() {
        let a = randwire(RandWireRegime::Small, 1);
        let b = randwire(RandWireRegime::Small, 2);
        // Edge structure differs => eltwise aggregation node counts differ
        // with overwhelming probability.
        let count = |g: &Graph| g.iter().filter(|(_, n)| n.name().contains("_sum")).count();
        assert!(a.len() != b.len() || count(&a) != count(&b));
    }
}
