//! GoogleNet (Inception v1) — the paper's representative *inception*
//! structure.

use crate::{Graph, GraphBuilder, Kernel, NodeId};

/// Per-module channel configuration of an inception block:
/// `(1x1, 3x3-reduce, 3x3, 5x5-reduce, 5x5, pool-proj)`.
type InceptionCfg = (u32, u32, u32, u32, u32, u32);

/// Builds GoogleNet / Inception-v1 (Szegedy et al., CVPR'15) for 224×224×3
/// inputs, without the auxiliary classifier heads (they are train-time only).
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::googlenet();
/// assert_eq!(g.name(), "googlenet");
/// ```
pub fn googlenet() -> Graph {
    let mut b = GraphBuilder::new("googlenet");
    let input = b.input(crate::TensorShape::new(224, 224, 3));
    let c1 = b
        .conv("conv1", input, 64, Kernel::square_same(7, 2))
        .expect("conv1");
    let p1 = b
        .pool("pool1", c1, Kernel::square_same(3, 2))
        .expect("pool1");
    let c2r = b
        .conv("conv2_reduce", p1, 64, Kernel::square_valid(1, 1))
        .expect("conv2r");
    let c2 = b
        .conv("conv2", c2r, 192, Kernel::square_same(3, 1))
        .expect("conv2");
    let mut x = b
        .pool("pool2", c2, Kernel::square_same(3, 2))
        .expect("pool2");

    let stage3: [InceptionCfg; 2] = [(64, 96, 128, 16, 32, 32), (128, 128, 192, 32, 96, 64)];
    for (i, cfg) in stage3.iter().enumerate() {
        x = inception(
            &mut b,
            &format!("inc3{}", (b'a' + i as u8) as char),
            x,
            *cfg,
        );
    }
    x = b
        .pool("pool3", x, Kernel::square_same(3, 2))
        .expect("pool3");

    let stage4: [InceptionCfg; 5] = [
        (192, 96, 208, 16, 48, 64),
        (160, 112, 224, 24, 64, 64),
        (128, 128, 256, 24, 64, 64),
        (112, 144, 288, 32, 64, 64),
        (256, 160, 320, 32, 128, 128),
    ];
    for (i, cfg) in stage4.iter().enumerate() {
        x = inception(
            &mut b,
            &format!("inc4{}", (b'a' + i as u8) as char),
            x,
            *cfg,
        );
    }
    x = b
        .pool("pool4", x, Kernel::square_same(3, 2))
        .expect("pool4");

    let stage5: [InceptionCfg; 2] = [(256, 160, 320, 32, 128, 128), (384, 192, 384, 48, 128, 128)];
    for (i, cfg) in stage5.iter().enumerate() {
        x = inception(
            &mut b,
            &format!("inc5{}", (b'a' + i as u8) as char),
            x,
            *cfg,
        );
    }
    let gap = b.global_pool("gap", x).expect("gap");
    b.fc("fc", gap, 1000).expect("fc");
    b.finish().expect("googlenet graph")
}

fn inception(b: &mut GraphBuilder, prefix: &str, x: NodeId, cfg: InceptionCfg) -> NodeId {
    let (c1, c3r, c3, c5r, c5, cp) = cfg;
    let b1 = b
        .conv(format!("{prefix}_1x1"), x, c1, Kernel::square_valid(1, 1))
        .expect("inc 1x1");
    let b2r = b
        .conv(format!("{prefix}_3x3r"), x, c3r, Kernel::square_valid(1, 1))
        .expect("inc 3x3r");
    let b2 = b
        .conv(format!("{prefix}_3x3"), b2r, c3, Kernel::square_same(3, 1))
        .expect("inc 3x3");
    let b3r = b
        .conv(format!("{prefix}_5x5r"), x, c5r, Kernel::square_valid(1, 1))
        .expect("inc 5x5r");
    let b3 = b
        .conv(format!("{prefix}_5x5"), b3r, c5, Kernel::square_same(5, 1))
        .expect("inc 5x5");
    let bp = b
        .pool(format!("{prefix}_pool"), x, Kernel::square_same(3, 1))
        .expect("inc pool");
    let bpp = b
        .conv(
            format!("{prefix}_poolproj"),
            bp,
            cp,
            Kernel::square_valid(1, 1),
        )
        .expect("inc poolproj");
    b.concat(format!("{prefix}_cat"), &[b1, b2, b3, bpp])
        .expect("inc concat")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorShape;

    #[test]
    fn parameter_count() {
        // GoogleNet has ~6.6-7 M parameters (without aux heads).
        let g = googlenet();
        let params = g.total_weight_elements();
        assert!(
            (5_500_000..7_500_000).contains(&params),
            "unexpected parameter count {params}"
        );
    }

    #[test]
    fn mac_count() {
        // GoogleNet is ~1.5 GMACs at 224x224.
        let g = googlenet();
        let gmacs = g.total_macs() as f64 / 1e9;
        assert!((1.2..1.9).contains(&gmacs), "unexpected GMACs {gmacs}");
    }

    #[test]
    fn concat_channel_arithmetic() {
        let g = googlenet();
        let shape_of = |name: &str| {
            g.iter()
                .find(|(_, n)| n.name() == name)
                .map(|(_, n)| n.out_shape())
                .unwrap()
        };
        assert_eq!(shape_of("inc3a_cat"), TensorShape::new(28, 28, 256));
        assert_eq!(shape_of("inc4e_cat"), TensorShape::new(14, 14, 832));
        assert_eq!(shape_of("inc5b_cat"), TensorShape::new(7, 7, 1024));
    }

    #[test]
    fn branch_fanout() {
        // Every inception input fans out into four branches.
        let g = googlenet();
        let pool2 = g.iter().find(|(_, n)| n.name() == "pool2").unwrap().0;
        assert_eq!(g.consumers(pool2).len(), 4);
    }
}
