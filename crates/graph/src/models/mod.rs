//! Shape-faithful constructors for every workload evaluated in the paper.
//!
//! Three structure families (paper §5.1.1):
//!
//! * **plain**: [`vgg16`]
//! * **multi-branch**: [`resnet50`], [`resnet152`], [`googlenet`],
//!   [`transformer`], [`gpt`]
//! * **irregular**: [`randwire_a`], [`randwire_b`] (seeded Watts–Strogatz)
//!   and [`nasnet`]
//!
//! Only shapes, kernel geometry and topology matter to the framework, so no
//! trained weights are involved. FC layers are lowered to 1×1 convolutions,
//! pooling/element-wise layers are depth-wise without weights, and scalar
//! activations are hidden in the pipeline — all per the paper's methodology.

mod googlenet;
mod mobilenet;
mod nasnet;
mod randwire;
mod resnet;
mod toy;
mod transformer;
mod vgg;

pub use googlenet::googlenet;
pub use mobilenet::mobilenet_v2;
pub use nasnet::nasnet;
pub use randwire::{randwire, randwire_a, randwire_b, RandWireRegime};
pub use resnet::{resnet152, resnet50};
pub use toy::{branchy, chain, diamond};
pub use transformer::{gpt, transformer};
pub use vgg::vgg16;

use crate::Graph;

/// Names of all paper-evaluated models, in the order of Figure 11.
pub const PAPER_MODELS: [&str; 8] = [
    "vgg16",
    "resnet50",
    "resnet152",
    "googlenet",
    "transformer",
    "gpt",
    "randwire-a",
    "randwire-b",
];

/// Builds a paper model by name (see [`PAPER_MODELS`], plus `"nasnet"` and
/// the extra `"mobilenet-v2"`).
///
/// Returns `None` for unknown names.
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::by_name("resnet50").unwrap();
/// assert_eq!(g.name(), "resnet50");
/// assert!(cocco_graph::models::by_name("alexnet").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Graph> {
    match name {
        "vgg16" => Some(vgg16()),
        "resnet50" => Some(resnet50()),
        "resnet152" => Some(resnet152()),
        "googlenet" => Some(googlenet()),
        "transformer" => Some(transformer()),
        "gpt" => Some(gpt()),
        "randwire-a" => Some(randwire_a()),
        "randwire-b" => Some(randwire_b()),
        "nasnet" => Some(nasnet()),
        "mobilenet-v2" => Some(mobilenet_v2()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paper_model_builds() {
        for name in PAPER_MODELS {
            let g = by_name(name).unwrap();
            assert!(g.len() > 10, "{name} suspiciously small: {}", g.len());
            assert!(!g.output_ids().is_empty(), "{name} has no outputs");
        }
        assert!(by_name("nasnet").is_some());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("not-a-model").is_none());
    }
}
