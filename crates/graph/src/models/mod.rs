//! Shape-faithful constructors for every workload evaluated in the paper.
//!
//! Three structure families (paper §5.1.1):
//!
//! * **plain**: [`vgg16`]
//! * **multi-branch**: [`resnet50`], [`resnet152`], [`googlenet`],
//!   [`transformer`], [`gpt`]
//! * **irregular**: [`randwire_a`], [`randwire_b`] (seeded Watts–Strogatz)
//!   and [`nasnet`]
//!
//! Only shapes, kernel geometry and topology matter to the framework, so no
//! trained weights are involved. FC layers are lowered to 1×1 convolutions,
//! pooling/element-wise layers are depth-wise without weights, and scalar
//! activations are hidden in the pipeline — all per the paper's methodology.

mod googlenet;
mod mobilenet;
mod nasnet;
mod randwire;
mod resnet;
mod toy;
mod transformer;
mod vgg;

pub use googlenet::googlenet;
pub use mobilenet::mobilenet_v2;
pub use nasnet::nasnet;
pub use randwire::{randwire, randwire_a, randwire_b, RandWireRegime};
pub use resnet::{resnet152, resnet50};
pub use toy::{branchy, chain, diamond};
pub use transformer::{gpt, transformer};
pub use vgg::vgg16;

use crate::Graph;

/// Names of all paper-evaluated models, in the order of Figure 11.
pub const PAPER_MODELS: [&str; 8] = [
    "vgg16",
    "resnet50",
    "resnet152",
    "googlenet",
    "transformer",
    "gpt",
    "randwire-a",
    "randwire-b",
];

/// The full model zoo — name plus constructor — in presentation order: the
/// eight [`PAPER_MODELS`] first, then the extra workloads.
///
/// This is the single source of truth for every name-based lookup:
/// [`by_name`], the `cocco-explore --list` output and test enumeration all
/// read from here, so adding a model means adding exactly one row.
static REGISTRY: [ModelEntry; 10] = [
    ("vgg16", vgg16),
    ("resnet50", resnet50),
    ("resnet152", resnet152),
    ("googlenet", googlenet),
    ("transformer", transformer),
    ("gpt", gpt),
    ("randwire-a", randwire_a),
    ("randwire-b", randwire_b),
    ("nasnet", nasnet),
    ("mobilenet-v2", mobilenet_v2),
];

/// Every model the zoo can build, as `(name, constructor)` rows.
///
/// # Examples
///
/// ```
/// let names: Vec<&str> = cocco_graph::models::registry()
///     .iter()
///     .map(|(name, _)| *name)
///     .collect();
/// assert!(names.contains(&"resnet50"));
/// assert!(names.contains(&"mobilenet-v2"));
/// // The paper's models come first, in Figure 11 order.
/// assert_eq!(&names[..8], &cocco_graph::models::PAPER_MODELS);
/// ```
pub fn registry() -> &'static [ModelEntry] {
    &REGISTRY
}

/// One [`registry`] row: the model's name and its constructor.
pub type ModelEntry = (&'static str, fn() -> Graph);

/// Builds a model by its [`registry`] name. Returns `None` for unknown
/// names.
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::by_name("resnet50").unwrap();
/// assert_eq!(g.name(), "resnet50");
/// assert!(cocco_graph::models::by_name("alexnet").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Graph> {
    registry()
        .iter()
        .find(|(entry, _)| *entry == name)
        .map(|(_, build)| build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_model_builds() {
        for &(name, build) in registry() {
            let g = build();
            assert_eq!(g.name(), name, "registry name disagrees with the graph");
            assert!(g.len() > 10, "{name} suspiciously small: {}", g.len());
            assert!(!g.output_ids().is_empty(), "{name} has no outputs");
        }
        assert!(by_name("nasnet").is_some());
    }

    #[test]
    fn registry_covers_paper_models_in_order() {
        let names: Vec<&str> = registry().iter().map(|(n, _)| *n).collect();
        assert_eq!(&names[..PAPER_MODELS.len()], &PAPER_MODELS);
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("not-a-model").is_none());
    }
}
