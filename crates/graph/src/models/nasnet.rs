//! NasNet-A — the paper's representative NAS-generated irregular structure.
//!
//! This is a shape-faithful approximation of NASNet-A-Large (Zoph et al.,
//! CVPR'18): stem + two stem reduction cells + three stacks of `N = 6`
//! normal cells separated by reduction cells, with the 331×331 input and
//! 168-filter base of the Large variant. Each cell combines the two previous
//! hidden states through five blocks of separable convolutions, average
//! pools and skips, then concatenates the block outputs — which is what
//! makes the model memory-intensive and structurally complex (the property
//! the paper's NasNet experiments exercise). The exact intra-cell wiring of
//! NASNet-A is approximated; see DESIGN.md §4.

use crate::{Dims2, Graph, GraphBuilder, Kernel, NodeId};

/// Builds the NasNet-A graph (331×331×3 input, N = 6, F = 168).
///
/// # Examples
///
/// ```
/// let g = cocco_graph::models::nasnet();
/// assert_eq!(g.name(), "nasnet");
/// assert!(g.len() > 300);
/// ```
pub fn nasnet() -> Graph {
    let mut b = GraphBuilder::new("nasnet");
    let input = b.input(crate::TensorShape::new(331, 331, 3));
    let stem = b
        .conv("stem", input, 96, Kernel::square_same(3, 2))
        .expect("stem");

    let f = 168u32;
    // Stem reductions bring 166 -> 83 -> 42 before the first normal stack.
    let (mut prev, mut cur) = (stem, stem);
    let mut idx = 0usize;
    for (i, filters) in [f / 4, f / 2].iter().enumerate() {
        let out = cell(
            &mut b,
            &format!("stem_r{}", i + 1),
            prev,
            cur,
            *filters,
            2,
            &mut idx,
        );
        prev = cur;
        cur = out;
    }

    let n = 6usize;
    for (stack, mult) in [1u32, 2, 4].iter().enumerate() {
        if stack > 0 {
            let out = cell(
                &mut b,
                &format!("red{stack}"),
                prev,
                cur,
                f * mult,
                2,
                &mut idx,
            );
            prev = cur;
            cur = out;
        }
        for i in 0..n {
            let out = cell(
                &mut b,
                &format!("s{stack}n{i}"),
                prev,
                cur,
                f * mult,
                1,
                &mut idx,
            );
            prev = cur;
            cur = out;
        }
    }

    let gap = b.global_pool("gap", cur).expect("gap");
    b.fc("fc", gap, 1000).expect("fc");
    b.finish().expect("nasnet graph")
}

/// One NASNet-A-style cell: squeeze both inputs to `filters` channels, run
/// five combiner blocks, concatenate. `stride = 2` makes a reduction cell.
fn cell(
    b: &mut GraphBuilder,
    prefix: &str,
    prev: NodeId,
    cur: NodeId,
    filters: u32,
    stride: u32,
    idx: &mut usize,
) -> NodeId {
    *idx += 1;
    let cur_hw = b.shape(cur).spatial();
    let prev_hw = b.shape(prev).spatial();
    // Factorized reduction: align `prev` to `cur`'s spatial extent.
    let adjust_stride = if prev_hw.h > cur_hw.h { 2 } else { 1 };
    let p = b
        .conv(
            format!("{prefix}_adjp"),
            prev,
            filters,
            strided_pointwise(adjust_stride),
        )
        .expect("cell adjust prev");
    let c = b
        .conv(format!("{prefix}_adjc"), cur, filters, strided_pointwise(1))
        .expect("cell adjust cur");

    let sep = |b: &mut GraphBuilder, name: String, x: NodeId, k: u32, s: u32| {
        let dw = b
            .dwconv(format!("{name}_dw"), x, Kernel::square_same(k, s))
            .expect("sep dw");
        b.conv(
            format!("{name}_pw"),
            dw,
            filters,
            Kernel::square_valid(1, 1),
        )
        .expect("sep pw")
    };
    let skip = |b: &mut GraphBuilder, name: String, x: NodeId, s: u32| {
        if s == 1 {
            x
        } else {
            b.conv(format!("{name}_skip"), x, filters, strided_pointwise(s))
                .expect("cell skip")
        }
    };
    let avg = |b: &mut GraphBuilder, name: String, x: NodeId, s: u32| {
        b.pool(format!("{name}_avg"), x, Kernel::square_same(3, s))
            .expect("cell avg")
    };

    let s = stride;
    // Block 1: sep5x5(p) + sep3x3(c)
    let b1a = sep(b, format!("{prefix}_b1a"), p, 5, s);
    let b1b = sep(b, format!("{prefix}_b1b"), c, 3, s);
    let x1 = b.eltwise(format!("{prefix}_b1"), &[b1a, b1b]).expect("b1");
    // Block 2: sep5x5(p) + sep3x3(p)
    let b2a = sep(b, format!("{prefix}_b2a"), p, 5, s);
    let b2b = sep(b, format!("{prefix}_b2b"), p, 3, s);
    let x2 = b.eltwise(format!("{prefix}_b2"), &[b2a, b2b]).expect("b2");
    // Block 3: avg3x3(c) + skip(p)
    let b3a = avg(b, format!("{prefix}_b3a"), c, s);
    let b3b = skip(b, format!("{prefix}_b3b"), p, s);
    let x3 = b.eltwise(format!("{prefix}_b3"), &[b3a, b3b]).expect("b3");
    // Block 4: avg3x3(p) + avg3x3(c)
    let b4a = avg(b, format!("{prefix}_b4a"), p, s);
    let b4b = avg(b, format!("{prefix}_b4b"), c, s);
    let x4 = b.eltwise(format!("{prefix}_b4"), &[b4a, b4b]).expect("b4");
    // Block 5: sep3x3(c) + skip(c)
    let b5a = sep(b, format!("{prefix}_b5a"), c, 3, s);
    let b5b = skip(b, format!("{prefix}_b5b"), c, s);
    let x5 = b.eltwise(format!("{prefix}_b5"), &[b5a, b5b]).expect("b5");

    b.concat(format!("{prefix}_cat"), &[x1, x2, x3, x4, x5])
        .expect("cell concat")
}

fn strided_pointwise(s: u32) -> Kernel {
    Kernel {
        size: Dims2::square(1),
        stride: Dims2::square(s),
        pad: Dims2::square(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_concat_has_five_times_filters() {
        let g = nasnet();
        let cat = g
            .iter()
            .find(|(_, n)| n.name() == "s0n0_cat")
            .map(|(_, n)| n.out_shape())
            .unwrap();
        assert_eq!(cat.c, 5 * 168);
        assert_eq!(cat.h, 42);
    }

    #[test]
    fn reduction_halves_spatial() {
        let g = nasnet();
        let shape_of = |name: &str| {
            g.iter()
                .find(|(_, n)| n.name() == name)
                .map(|(_, n)| n.out_shape())
                .unwrap()
        };
        assert_eq!(shape_of("red1_cat").h, 21);
        assert_eq!(shape_of("red2_cat").h, 11);
        assert_eq!(shape_of("s2n5_cat").h, 11);
    }

    #[test]
    fn is_memory_intensive() {
        // The property the paper relies on: NasNet carries far more
        // activation volume than ResNet50.
        let nas = nasnet();
        let res = crate::models::resnet50();
        let act = |g: &Graph| -> u64 { g.node_ids().map(|id| g.out_elements(id)).sum() };
        assert!(act(&nas) > 2 * act(&res));
    }

    #[test]
    fn node_count_is_large_and_irregular() {
        let g = nasnet();
        assert!(g.len() > 300, "got {}", g.len());
        // Cells reference both of the two previous hidden states, so some
        // nodes have fanout > 2.
        assert!(g.node_ids().any(|id| g.consumers(id).len() > 2));
    }
}
