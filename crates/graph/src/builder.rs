//! Incremental, validated construction of computation graphs.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::layer::{Kernel, LayerOp, Node};
use crate::shape::TensorShape;
use std::collections::HashSet;

/// Builder for [`Graph`] values.
///
/// Nodes are appended in topological order: every producer must already
/// exist, which is what lets [`NodeId`]s double as topological positions.
/// Shapes are inferred and validated as nodes are added, so wiring mistakes
/// surface immediately with a structured [`GraphError`].
///
/// # Examples
///
/// ```
/// use cocco_graph::{GraphBuilder, Kernel, TensorShape};
///
/// # fn main() -> Result<(), cocco_graph::GraphError> {
/// let mut b = GraphBuilder::new("lenet-ish");
/// let x = b.input(TensorShape::new(28, 28, 1));
/// let c1 = b.conv("c1", x, 6, Kernel::square_same(5, 1))?;
/// let p1 = b.pool("p1", c1, Kernel::square_valid(2, 2))?;
/// let c2 = b.conv("c2", p1, 16, Kernel::square_valid(5, 1))?;
/// let g = b.finish()?;
/// assert_eq!(g.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<Node>,
    names: HashSet<String>,
    fresh: u32,
}

impl GraphBuilder {
    /// Creates an empty builder for a model called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            names: HashSet::new(),
            fresh: 0,
        }
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes have been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a model-input placeholder producing a tensor of `shape`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` has a zero dimension; inputs are programmer-supplied
    /// constants, so this is a usage bug rather than a recoverable error.
    pub fn input(&mut self, shape: TensorShape) -> NodeId {
        assert!(!shape.is_degenerate(), "input shape {shape} has a zero dim");
        let name = self.fresh_name("input");
        self.names.insert(name.clone());
        self.nodes.push(Node {
            name,
            op: LayerOp::Input,
            inputs: Vec::new(),
            out_shape: shape,
        });
        NodeId::from_index(self.nodes.len() - 1)
    }

    /// Adds an arbitrary operator node.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is reused, a producer id is unknown, the
    /// arity or shapes are inconsistent, or the inferred output shape is
    /// degenerate.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        op: LayerOp,
        inputs: &[NodeId],
    ) -> Result<NodeId, GraphError> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(GraphError::DuplicateName { node: name });
        }
        for id in inputs {
            if id.index() >= self.nodes.len() {
                return Err(GraphError::UnknownNode { node: name });
            }
        }
        let in_shapes: Vec<TensorShape> = inputs
            .iter()
            .map(|id| self.nodes[id.index()].out_shape)
            .collect();
        let out_shape = Node::infer_shape(&name, &op, &in_shapes)?;
        if out_shape.is_degenerate() {
            return Err(GraphError::DegenerateShape {
                node: name,
                shape: out_shape,
            });
        }
        self.names.insert(name.clone());
        self.nodes.push(Node {
            name,
            op,
            inputs: inputs.to_vec(),
            out_shape,
        });
        Ok(NodeId::from_index(self.nodes.len() - 1))
    }

    /// Adds a convolution with `c_out` output channels.
    ///
    /// # Errors
    ///
    /// See [`GraphBuilder::add`].
    pub fn conv(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        c_out: u32,
        kernel: Kernel,
    ) -> Result<NodeId, GraphError> {
        self.add(name, LayerOp::Conv { kernel, c_out }, &[from])
    }

    /// Adds a fully-connected layer, lowered to a 1×1 convolution over the
    /// producer's channel dimension (paper §5.1.1). The producer's spatial
    /// extent is preserved; use after a [`global_pool`](Self::global_pool)
    /// for classifier heads.
    ///
    /// # Errors
    ///
    /// See [`GraphBuilder::add`].
    pub fn fc(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        c_out: u32,
    ) -> Result<NodeId, GraphError> {
        self.conv(name, from, c_out, Kernel::pointwise())
    }

    /// Adds a depth-wise convolution (weights `F·F·C`).
    ///
    /// # Errors
    ///
    /// See [`GraphBuilder::add`].
    pub fn dwconv(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        kernel: Kernel,
    ) -> Result<NodeId, GraphError> {
        self.add(name, LayerOp::DepthwiseConv { kernel }, &[from])
    }

    /// Adds a pooling layer (depth-wise window, no weights).
    ///
    /// # Errors
    ///
    /// See [`GraphBuilder::add`].
    pub fn pool(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        kernel: Kernel,
    ) -> Result<NodeId, GraphError> {
        self.add(name, LayerOp::Pool { kernel }, &[from])
    }

    /// Adds a global pooling layer reducing the spatial extent to 1×1.
    ///
    /// # Errors
    ///
    /// See [`GraphBuilder::add`].
    pub fn global_pool(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
    ) -> Result<NodeId, GraphError> {
        self.add(name, LayerOp::GlobalPool, &[from])
    }

    /// Adds an element-wise op over one or more same-shaped inputs.
    ///
    /// # Errors
    ///
    /// See [`GraphBuilder::add`].
    pub fn eltwise(
        &mut self,
        name: impl Into<String>,
        from: &[NodeId],
    ) -> Result<NodeId, GraphError> {
        self.add(name, LayerOp::Eltwise, from)
    }

    /// Adds a channel concatenation.
    ///
    /// # Errors
    ///
    /// See [`GraphBuilder::add`].
    pub fn concat(
        &mut self,
        name: impl Into<String>,
        from: &[NodeId],
    ) -> Result<NodeId, GraphError> {
        self.add(name, LayerOp::Concat, from)
    }

    /// Adds an activation×activation matmul `A·Bᵀ` (`rhs_transposed=true`,
    /// e.g. `Q·Kᵀ`) or `A·B` (`rhs_transposed=false`, e.g. `scores·V`).
    ///
    /// # Errors
    ///
    /// See [`GraphBuilder::add`].
    pub fn matmul(
        &mut self,
        name: impl Into<String>,
        a: NodeId,
        b: NodeId,
        rhs_transposed: bool,
    ) -> Result<NodeId, GraphError> {
        self.add(name, LayerOp::MatMul { rhs_transposed }, &[a, b])
    }

    /// The output shape of an already-added node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this builder.
    pub fn shape(&self, id: NodeId) -> TensorShape {
        self.nodes[id.index()].out_shape
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty or lacks an input node.
    pub fn finish(self) -> Result<Graph, GraphError> {
        Graph::from_nodes(self.name, self.nodes)
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        loop {
            let candidate = if self.fresh == 0 {
                prefix.to_string()
            } else {
                format!("{prefix}{}", self.fresh)
            };
            self.fresh += 1;
            if !self.names.contains(&candidate) {
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_rejected() {
        let mut b = GraphBuilder::new("t");
        let i = b.input(TensorShape::new(8, 8, 3));
        b.conv("c", i, 4, Kernel::pointwise()).unwrap();
        let err = b.conv("c", i, 4, Kernel::pointwise()).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateName { .. }));
    }

    #[test]
    fn unknown_producer_rejected() {
        let mut b = GraphBuilder::new("t");
        b.input(TensorShape::new(8, 8, 3));
        let bogus = NodeId::from_index(42);
        let err = b.conv("c", bogus, 4, Kernel::pointwise()).unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode { .. }));
    }

    #[test]
    fn empty_graph_rejected() {
        let b = GraphBuilder::new("t");
        assert!(matches!(b.finish(), Err(GraphError::Empty)));
    }

    #[test]
    fn missing_input_rejected() {
        // Only way to have no input is an empty builder, since every other
        // op requires producers; keep the check honest via from_nodes.
        let mut b = GraphBuilder::new("t");
        let i = b.input(TensorShape::new(8, 8, 3));
        let _ = b.conv("c", i, 4, Kernel::pointwise()).unwrap();
        assert!(b.finish().is_ok());
    }

    #[test]
    fn fc_is_pointwise_conv() {
        let mut b = GraphBuilder::new("t");
        let i = b.input(TensorShape::new(1, 1, 512));
        let f = b.fc("fc", i, 1000).unwrap();
        assert_eq!(b.shape(f), TensorShape::new(1, 1, 1000));
    }

    #[test]
    fn fresh_input_names_unique() {
        let mut b = GraphBuilder::new("t");
        let a = b.input(TensorShape::new(4, 4, 1));
        let c = b.input(TensorShape::new(4, 4, 1));
        let g_a = b.shape(a);
        let g_c = b.shape(c);
        assert_eq!(g_a, g_c);
        let g = b.finish().unwrap();
        assert_eq!(g.input_ids().len(), 2);
        let names: Vec<_> = g.iter().map(|(_, n)| n.name().to_string()).collect();
        assert_ne!(names[0], names[1]);
    }

    #[test]
    fn degenerate_output_rejected() {
        let mut b = GraphBuilder::new("t");
        let i = b.input(TensorShape::new(8, 8, 3));
        // 1x1 conv with zero output channels is degenerate.
        let err = b.conv("z", i, 0, Kernel::pointwise()).unwrap_err();
        assert!(matches!(err, GraphError::DegenerateShape { .. }));
    }

    #[test]
    #[should_panic(expected = "zero dim")]
    fn degenerate_input_panics() {
        let mut b = GraphBuilder::new("t");
        b.input(TensorShape::new(0, 8, 3));
    }
}
