//! Small geometry types shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A pair of extents along the spatial height/width dimensions.
///
/// Used for kernel sizes, strides, paddings and tile geometry.
///
/// # Examples
///
/// ```
/// use cocco_graph::Dims2;
/// let d = Dims2::square(3);
/// assert_eq!(d.h, 3);
/// assert_eq!(d.area(), 9);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Dims2 {
    /// Extent along the height (row) dimension.
    pub h: u32,
    /// Extent along the width (column) dimension.
    pub w: u32,
}

impl Dims2 {
    /// Creates a new pair of extents.
    pub fn new(h: u32, w: u32) -> Self {
        Self { h, w }
    }

    /// Creates a square pair where both extents equal `n`.
    pub fn square(n: u32) -> Self {
        Self { h: n, w: n }
    }

    /// The product of both extents as a widened integer.
    pub fn area(&self) -> u64 {
        u64::from(self.h) * u64::from(self.w)
    }
}

impl fmt::Display for Dims2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.h, self.w)
    }
}

impl From<(u32, u32)> for Dims2 {
    fn from((h, w): (u32, u32)) -> Self {
        Self { h, w }
    }
}

/// Shape of an activation tensor: `h × w × c` (batch is handled by the
/// simulator, element width by the accelerator configuration).
///
/// Sequence tensors of Transformer-style models are represented with the
/// sequence dimension mapped to `h`, `w = 1` and the feature dimension mapped
/// to `c`, matching the paper's lowering of FC layers to 1×1 convolutions.
///
/// # Examples
///
/// ```
/// use cocco_graph::TensorShape;
/// let t = TensorShape::new(56, 56, 64);
/// assert_eq!(t.elements(), 56 * 56 * 64);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Height (rows), or sequence length for sequence models.
    pub h: u32,
    /// Width (columns).
    pub w: u32,
    /// Channels (features).
    pub c: u32,
}

impl TensorShape {
    /// Creates a new tensor shape.
    pub fn new(h: u32, w: u32, c: u32) -> Self {
        Self { h, w, c }
    }

    /// Shape of a sequence tensor: `seq` tokens of `features` channels.
    pub fn seq(seq: u32, features: u32) -> Self {
        Self {
            h: seq,
            w: 1,
            c: features,
        }
    }

    /// Total number of elements.
    pub fn elements(&self) -> u64 {
        u64::from(self.h) * u64::from(self.w) * u64::from(self.c)
    }

    /// The spatial extents `(h, w)` only.
    pub fn spatial(&self) -> Dims2 {
        Dims2 {
            h: self.h,
            w: self.w,
        }
    }

    /// Returns `true` if any dimension is zero.
    pub fn is_degenerate(&self) -> bool {
        self.h == 0 || self.w == 0 || self.c == 0
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.h, self.w, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_area_widens() {
        let d = Dims2::new(100_000, 100_000);
        assert_eq!(d.area(), 10_000_000_000);
    }

    #[test]
    fn dims_square_and_from_tuple() {
        assert_eq!(Dims2::square(3), Dims2::from((3, 3)));
        assert_eq!(Dims2::new(2, 5), Dims2::from((2, 5)));
    }

    #[test]
    fn tensor_elements() {
        assert_eq!(TensorShape::new(2, 3, 4).elements(), 24);
        assert_eq!(TensorShape::seq(128, 512).elements(), 128 * 512);
    }

    #[test]
    fn degenerate_detection() {
        assert!(TensorShape::new(0, 3, 4).is_degenerate());
        assert!(!TensorShape::new(1, 1, 1).is_degenerate());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dims2::new(3, 2).to_string(), "3x2");
        assert_eq!(TensorShape::new(1, 2, 3).to_string(), "1x2x3");
    }

    #[test]
    fn spatial_projection() {
        assert_eq!(TensorShape::new(7, 9, 3).spatial(), Dims2::new(7, 9));
    }
}
