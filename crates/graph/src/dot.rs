//! Graphviz DOT export for visual inspection of models and partitions.

use crate::graph::{Graph, NodeId};
use std::fmt::Write as _;

impl Graph {
    /// Renders the graph in Graphviz DOT format.
    ///
    /// `group_of` optionally maps each node to a cluster id (e.g. a subgraph
    /// index from a partition); nodes in the same cluster are boxed together.
    ///
    /// # Examples
    ///
    /// ```
    /// use cocco_graph::{GraphBuilder, Kernel, TensorShape};
    /// # fn main() -> Result<(), cocco_graph::GraphError> {
    /// let mut b = GraphBuilder::new("toy");
    /// let i = b.input(TensorShape::new(8, 8, 3));
    /// b.conv("c", i, 4, Kernel::square_same(3, 1))?;
    /// let g = b.finish()?;
    /// let dot = g.to_dot(|_| None);
    /// assert!(dot.starts_with("digraph"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self, group_of: impl Fn(NodeId) -> Option<usize>) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontsize=10];");

        // Bucket nodes by cluster.
        let mut clusters: std::collections::BTreeMap<Option<usize>, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for id in self.node_ids() {
            clusters.entry(group_of(id)).or_default().push(id);
        }
        for (cluster, ids) in &clusters {
            if let Some(c) = cluster {
                let _ = writeln!(out, "  subgraph cluster_{c} {{ label=\"sg{c}\";");
            }
            for &id in ids {
                let node = self.node(id);
                let _ = writeln!(
                    out,
                    "    {} [label=\"{}\\n{} {}\"];",
                    id,
                    node.name(),
                    node.op(),
                    node.out_shape()
                );
            }
            if cluster.is_some() {
                let _ = writeln!(out, "  }}");
            }
        }
        for id in self.node_ids() {
            for &c in self.consumers(id) {
                let _ = writeln!(out, "  {id} -> {c};");
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, Kernel, TensorShape};

    #[test]
    fn dot_contains_every_node_and_edge() {
        let mut b = GraphBuilder::new("t");
        let i = b.input(TensorShape::new(8, 8, 3));
        let c = b.conv("convA", i, 4, Kernel::square_same(3, 1)).unwrap();
        let d = b.conv("convB", c, 4, Kernel::square_same(3, 1)).unwrap();
        let _ = d;
        let g = b.finish().unwrap();
        let dot = g.to_dot(|_| None);
        assert!(dot.contains("convA"));
        assert!(dot.contains("convB"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n2"));
    }

    #[test]
    fn dot_clusters_by_group() {
        let mut b = GraphBuilder::new("t");
        let i = b.input(TensorShape::new(8, 8, 3));
        let c = b.conv("convA", i, 4, Kernel::square_same(3, 1)).unwrap();
        let _ = c;
        let g = b.finish().unwrap();
        let dot = g.to_dot(|id| Some(id.index()));
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("cluster_1"));
    }
}
