//! `cocco-audit` — the workspace determinism & robustness lint.
//!
//! The repo's load-bearing guarantee is that seeded explorations are
//! bit-identical at any thread count and across checkpoint/resume. That
//! property is enforced by example-based tests, but example tests only
//! cover the examples; this crate makes the *discipline* machine-checked:
//! a dependency-free static-analysis pass (hand-rolled lexer, no syn)
//! that scans every workspace source file for the constructs that have
//! historically produced nondeterminism or user-reachable panics.
//!
//! See [`rules::RULES`] for the rule set, `audit.toml` at the repo root
//! for path-level policy, and the README "Determinism invariants"
//! section for the narrative version.
//!
//! The crate is a library (so `cocco-bench`'s `micro` can time the gate
//! in-process and tests can drive fixtures) plus a thin CLI binary.

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{Allow, Config, ConfigError};
pub use rules::{
    analyze_file, rule, Diagnostic, FileReport, NoAllows, PathPolicy, RuleInfo, RULES,
};

use std::fmt;
use std::path::{Path, PathBuf};

/// The outcome of auditing a whole tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppressions and allows, in (path, line,
    /// rule) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings silenced by inline suppressions.
    pub suppressed: usize,
    /// Findings silenced by `audit.toml` path allows.
    pub allowed: usize,
}

impl Report {
    /// True when nothing survived — the gate passes.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable rendering: one `file:line rule message` block per
    /// finding plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}:{} {} {}\n", d.path, d.line, d.rule, d.message));
            if !d.snippet.is_empty() {
                out.push_str(&format!("    {}\n", d.snippet));
            }
        }
        out.push_str(&format!(
            "cocco-audit: {} finding(s) in {} file(s) scanned ({} suppressed, {} path-allowed)\n",
            self.diagnostics.len(),
            self.files_scanned,
            self.suppressed,
            self.allowed
        ));
        out
    }

    /// Machine-readable rendering (hand-rolled JSON — the crate is
    /// dependency-free).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"snippet\": {}}}",
                json_str(&d.path),
                d.line,
                json_str(d.rule),
                json_str(&d.message),
                json_str(&d.snippet)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"allowed\": {},\n  \"findings\": {}\n}}\n",
            self.files_scanned,
            self.suppressed,
            self.allowed,
            self.diagnostics.len()
        ));
        out
    }
}

/// JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Errors from driving a whole-tree audit.
#[derive(Debug)]
pub enum AuditError {
    /// `audit.toml` failed to parse.
    Config(ConfigError),
    /// An include root or source file could not be read.
    Io {
        path: PathBuf,
        error: std::io::Error,
    },
    /// The config references a rule id that does not exist.
    UnknownRule { rule: String, path: String },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Config(e) => write!(f, "{e}"),
            AuditError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            AuditError::UnknownRule { rule, path } => {
                write!(
                    f,
                    "audit.toml: [[allow]] for `{path}` names unknown rule `{rule}`"
                )
            }
        }
    }
}

impl std::error::Error for AuditError {}

impl From<ConfigError> for AuditError {
    fn from(e: ConfigError) -> Self {
        AuditError::Config(e)
    }
}

/// Path policy backed by the parsed config, pinned to one file.
struct FilePolicy<'a> {
    config: &'a Config,
    rel_path: &'a str,
}

impl PathPolicy for FilePolicy<'_> {
    fn rule_allowed(&self, rule: &str) -> bool {
        self.config.is_allowed(rule, self.rel_path)
    }
}

/// Audits the tree under `root` using `config`. File order is sorted, so
/// the report is deterministic — the audit holds itself to its own rules.
pub fn audit_tree(root: &Path, config: &Config) -> Result<Report, AuditError> {
    for allow in &config.allows {
        if rule(&allow.rule).is_none() {
            return Err(AuditError::UnknownRule {
                rule: allow.rule.clone(),
                path: allow.path.clone(),
            });
        }
    }
    let mut files = Vec::new();
    for include in &config.include {
        let base = root.join(include);
        if !base.exists() {
            continue;
        }
        collect_rs_files(&base, &mut files)?;
    }
    files.sort();

    let mut report = Report::default();
    for file in &files {
        let rel = rel_label(root, file);
        if config.is_excluded(&rel) {
            continue;
        }
        let source = std::fs::read_to_string(file).map_err(|error| AuditError::Io {
            path: file.clone(),
            error,
        })?;
        let policy = FilePolicy {
            config,
            rel_path: &rel,
        };
        let file_report = analyze_file(&rel, &source, &policy);
        report.files_scanned += 1;
        report.suppressed += file_report.suppressed;
        report.allowed += file_report.allowed;
        report.diagnostics.extend(file_report.diagnostics);
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// Audits `root` with its `audit.toml` (or the default config when the
/// file is absent).
pub fn audit_workspace(root: &Path) -> Result<Report, AuditError> {
    let config_path = root.join("audit.toml");
    let config = if config_path.exists() {
        Config::load(&config_path)?
    } else {
        Config::default()
    };
    audit_tree(root, &config)
}

/// Recursively collects `.rs` files (sorted traversal for determinism).
fn collect_rs_files(base: &Path, out: &mut Vec<PathBuf>) -> Result<(), AuditError> {
    if base.is_file() {
        if base.extension().is_some_and(|e| e == "rs") {
            out.push(base.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(base)
        .map_err(|error| AuditError::Io {
            path: base.to_path_buf(),
            error,
        })?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            // `target/` can nest anywhere cargo runs; never descend.
            if entry.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Repo-relative, `/`-separated label for a file.
fn rel_label(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let mut label = String::new();
    for part in rel.components() {
        if !label.is_empty() {
            label.push('/');
        }
        label.push_str(&part.as_os_str().to_string_lossy());
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_survives_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn report_renders_both_modes() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "R1",
                message: "`.unwrap()` in library code".into(),
                snippet: "x.unwrap()".into(),
            }],
            files_scanned: 1,
            suppressed: 2,
            allowed: 1,
        };
        let human = report.render_human();
        assert!(human.contains("crates/x/src/lib.rs:3 R1"));
        assert!(human.contains("1 finding(s)"));
        let json = report.render_json();
        assert!(json.contains("\"rule\": \"R1\""));
        assert!(json.contains("\"files_scanned\": 1"));
    }

    #[test]
    fn unknown_rule_in_config_is_an_error() {
        let config = Config {
            allows: vec![Allow {
                rule: "Z9".into(),
                path: "crates/".into(),
                reason: "nope".into(),
            }],
            ..Config::default()
        };
        let err = audit_tree(Path::new("/nonexistent"), &config).unwrap_err();
        assert!(matches!(err, AuditError::UnknownRule { .. }));
    }
}
