//! `audit.toml` — repo-level audit configuration.
//!
//! The audit binary is dependency-free, so this module hand-rolls a
//! parser for the small TOML subset the config actually uses:
//!
//! ```toml
//! version = 1
//! include = ["crates", "tests"]
//! exclude = ["crates/audit/tests/fixtures"]
//!
//! [[allow]]
//! rule = "D3"
//! path = "crates/bench/"
//! reason = "the bench harness measures wall time by design"
//! ```
//!
//! Supported: comments, top-level `key = value` (string / integer /
//! boolean / array-of-strings), and repeated `[[allow]]` tables with
//! string values. Anything else is a hard parse error — the config gates
//! CI, so silent misreads are worse than loud ones.

use std::fmt;
use std::path::Path;

/// One path-level exemption: `rule` is not enforced under `path`
/// (repo-relative prefix), for the stated `reason`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    pub rule: String,
    pub path: String,
    pub reason: String,
}

/// The parsed `audit.toml`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Config {
    /// Config format version (currently 1).
    pub version: u32,
    /// Repo-relative directories (or files) to scan.
    pub include: Vec<String>,
    /// Repo-relative path prefixes to skip entirely.
    pub exclude: Vec<String>,
    /// Path-level rule exemptions.
    pub allows: Vec<Allow>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            version: 1,
            include: vec!["crates".into(), "tests".into(), "examples".into()],
            exclude: Vec::new(),
            allows: Vec::new(),
        }
    }
}

impl Config {
    /// True if `rel_path` (repo-relative, `/`-separated) is exempt from
    /// `rule` via a path allow.
    pub fn is_allowed(&self, rule: &str, rel_path: &str) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && rel_path.starts_with(a.path.as_str()))
    }

    /// True if `rel_path` falls under an `exclude` prefix.
    pub fn is_excluded(&self, rel_path: &str) -> bool {
        self.exclude
            .iter()
            .any(|e| rel_path.starts_with(e.as_str()))
    }

    /// Loads the config from `path`.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path).map_err(|e| ConfigError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::parse(&text)
    }

    /// Parses the TOML-subset text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut config = Config {
            version: 1,
            include: Vec::new(),
            exclude: Vec::new(),
            allows: Vec::new(),
        };
        let mut have_include = false;
        // Which `[[allow]]` table (if any) key/value lines belong to.
        let mut in_allow: Option<Allow> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(allow) = in_allow.take() {
                    config.allows.push(finish_allow(allow, lineno)?);
                }
                in_allow = Some(Allow {
                    rule: String::new(),
                    path: String::new(),
                    reason: String::new(),
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unsupported table header `{line}` (only [[allow]])"),
                });
            }
            let (key, value) = split_kv(line, lineno)?;
            if let Some(allow) = in_allow.as_mut() {
                let value = parse_string(value, lineno)?;
                match key {
                    "rule" => allow.rule = value,
                    "path" => allow.path = value,
                    "reason" => allow.reason = value,
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown [[allow]] key `{key}`"),
                        })
                    }
                }
            } else {
                match key {
                    "version" => {
                        config.version = value.parse().map_err(|_| ConfigError {
                            line: lineno,
                            message: format!("version must be an integer, got `{value}`"),
                        })?;
                    }
                    "include" => {
                        config.include = parse_string_array(value, lineno)?;
                        have_include = true;
                    }
                    "exclude" => {
                        config.exclude = parse_string_array(value, lineno)?;
                    }
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown key `{key}`"),
                        })
                    }
                }
            }
        }
        if let Some(allow) = in_allow.take() {
            config
                .allows
                .push(finish_allow(allow, text.lines().count() as u32)?);
        }
        if !have_include {
            config.include = Config::default().include;
        }
        if config.version != 1 {
            return Err(ConfigError {
                line: 0,
                message: format!("unsupported config version {}", config.version),
            });
        }
        Ok(config)
    }
}

/// Validates a completed `[[allow]]` block: every field is mandatory —
/// an exemption without a reason is exactly the discipline failure the
/// audit exists to prevent.
fn finish_allow(allow: Allow, line: u32) -> Result<Allow, ConfigError> {
    if allow.rule.is_empty() || allow.path.is_empty() {
        return Err(ConfigError {
            line,
            message: "[[allow]] requires both `rule` and `path`".into(),
        });
    }
    if allow.reason.trim().is_empty() {
        return Err(ConfigError {
            line,
            message: format!(
                "[[allow]] for {} on `{}` has no reason — reasons are mandatory",
                allow.rule, allow.path
            ),
        });
    }
    Ok(allow)
}

/// Drops a trailing `#` comment (string-aware).
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_string = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_string = !in_string,
            b'#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits `key = value`.
fn split_kv(line: &str, lineno: u32) -> Result<(&str, &str), ConfigError> {
    match line.split_once('=') {
        Some((k, v)) => Ok((k.trim(), v.trim())),
        None => Err(ConfigError {
            line: lineno,
            message: format!("expected `key = value`, got `{line}`"),
        }),
    }
}

/// Parses `"text"`.
fn parse_string(value: &str, lineno: u32) -> Result<String, ConfigError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ConfigError {
            line: lineno,
            message: format!("expected a quoted string, got `{value}`"),
        })
    }
}

/// Parses `["a", "b"]` (single line).
fn parse_string_array(value: &str, lineno: u32) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    if !v.starts_with('[') || !v.ends_with(']') {
        return Err(ConfigError {
            line: lineno,
            message: format!("expected a [\"…\"] array, got `{value}`"),
        });
    }
    let inner = v[1..v.len() - 1].trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_string(s, lineno))
        .collect()
}

/// A config parse failure with its 1-based line (0 = file-level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "audit.toml:{}: {}", self.line, self.message)
        } else {
            write!(f, "audit.toml: {}", self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            r#"
            # workspace audit policy
            version = 1
            include = ["crates", "tests"]  # scanned roots
            exclude = ["crates/audit/tests/fixtures"]

            [[allow]]
            rule = "D3"
            path = "crates/bench/"
            reason = "bench harness measures wall time by design"

            [[allow]]
            rule = "R1"
            path = "examples/"
            reason = "examples may panic"
            "#,
        )
        .unwrap();
        assert_eq!(cfg.include, vec!["crates", "tests"]);
        assert!(cfg.is_excluded("crates/audit/tests/fixtures/bad.rs"));
        assert!(cfg.is_allowed("D3", "crates/bench/src/harness.rs"));
        assert!(!cfg.is_allowed("D3", "crates/engine/src/cache.rs"));
        assert!(cfg.is_allowed("R1", "examples/quickstart.rs"));
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let err =
            Config::parse("[[allow]]\nrule = \"D1\"\npath = \"x\"\nreason = \"  \"\n").unwrap_err();
        assert!(err.message.contains("mandatory"), "{err}");
    }

    #[test]
    fn unknown_keys_are_loud() {
        assert!(Config::parse("colour = \"red\"").is_err());
        assert!(Config::parse("[allow]\n").is_err());
        assert!(Config::parse("include = \"not-an-array\"").is_err());
    }

    #[test]
    fn defaults_apply_without_include() {
        let cfg = Config::parse("version = 1\n").unwrap();
        assert_eq!(cfg.include, Config::default().include);
    }
}
