//! A minimal, lossless-enough Rust lexer for auditing.
//!
//! The rules only need a *token stream* that is reliably free of string
//! and comment content (so `"thread_rng"` inside a message or a doc
//! comment never trips a rule), plus the line comments themselves (for
//! suppression parsing). This is a hand-rolled scanner — no syn, no
//! proc-macro2 — because the audit binary must stay dependency-free.
//!
//! Coverage notes:
//! - Nested block comments, raw strings (`r#"…"#` with any hash depth),
//!   byte/raw-byte strings, char literals and lifetimes are handled.
//! - Multi-character operators arrive as single-character [`Punct`]
//!   tokens (`->` is `-` then `>`); rule scanners pattern-match short
//!   token windows, so this is a feature, not a loss.
//! - Numeric literals are collapsed into a single [`Literal`] token.
//!
//! [`Punct`]: TokenKind::Punct
//! [`Literal`]: TokenKind::Literal

/// What a token is; only identifiers carry their text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`for`, `in`, `HashMap`, …).
    Ident(String),
    /// A single punctuation character (`.`, `&`, `<`, …).
    Punct(char),
    /// A string / char / numeric literal (content discarded).
    Literal,
    /// A lifetime (`'a`) — distinct from char literals.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// A `//` comment with its line, kept out of the token stream but needed
/// for suppression parsing.
#[derive(Clone, Debug)]
pub struct LineComment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Text after the leading `//` (including any `/` or `!` doc marker).
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<LineComment>,
}

/// Lexes `source`, discarding comment/string *content* but keeping line
/// comments on the side. Never fails: unterminated constructs simply end
/// the scan (the audit runs over code that already compiles).
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Advances over `bytes[from..to)` counting newlines.
    fn count_lines(bytes: &[u8], from: usize, to: usize, line: &mut u32) {
        *line += bytes[from..to].iter().filter(|&&b| b == b'\n').count() as u32;
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(LineComment {
                    line,
                    text: source[start..j].to_string(),
                });
                i = j;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Nested block comment.
                let start = i;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && j + 1 < bytes.len() && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && j + 1 < bytes.len() && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                count_lines(bytes, start, j, &mut line);
                i = j;
            }
            b'"' => {
                let j = skip_string(bytes, i);
                count_lines(bytes, i, j, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = j;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let j = skip_raw_or_byte_string(bytes, i);
                let at = line;
                count_lines(bytes, i, j, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line: at,
                });
                i = j;
            }
            b'\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime.
                let (kind, j) = lex_quote(bytes, i);
                out.tokens.push(Token { kind, line });
                i = j;
            }
            _ if b.is_ascii_digit() => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let c = bytes[j];
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        j += 1;
                    } else if c == b'.'
                        && j + 1 < bytes.len()
                        && bytes[j + 1].is_ascii_digit()
                        && bytes[j - 1] != b'.'
                    {
                        // `1.5`, but not the first dot of `0..n`.
                        j += 1;
                    } else if (c == b'+' || c == b'-')
                        && matches!(bytes[j - 1], b'e' | b'E')
                        && j > i + 1
                    {
                        // Exponent sign: `1e-7`.
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = j;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 => {
                let mut j = i + 1;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] >= 0x80)
                {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(source[i..j].to_string()),
                    line,
                });
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(b as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_string(bytes: &[u8], start: usize) -> usize {
    let mut j = start + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// True if position `i` starts `r"`, `r#`, `b"`, `br"`, `br#`, `b'`-less
/// raw/byte string forms (plain `b'x'` char is handled by the quote path).
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    if rest.starts_with(b"r\"") || rest.starts_with(b"r#") {
        return true;
    }
    if rest.starts_with(b"b\"") {
        return true;
    }
    rest.starts_with(b"br\"") || rest.starts_with(b"br#")
}

/// Skips a raw / byte / raw-byte string starting at `i`; returns the index
/// just past its end.
fn skip_raw_or_byte_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        // Count hashes.
        let mut hashes = 0usize;
        while j < bytes.len() && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'"' {
            j += 1;
            // Scan for `"` followed by `hashes` hashes.
            while j < bytes.len() {
                if bytes[j] == b'"'
                    && bytes[j + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&b| b == b'#')
                        .count()
                        == hashes
                {
                    return j + 1 + hashes;
                }
                j += 1;
            }
            return j;
        }
        return j;
    }
    // Plain byte string `b"…"`.
    skip_string(bytes, j)
}

/// Lexes from a `'`: either a lifetime or a char literal.
fn lex_quote(bytes: &[u8], i: usize) -> (TokenKind, usize) {
    let n = bytes.len();
    // `'\x'` escapes are always char literals.
    if i + 1 < n && bytes[i + 1] == b'\\' {
        let mut j = i + 2;
        // Skip the escape body up to the closing quote.
        while j < n && bytes[j] != b'\'' {
            j += 1;
        }
        return (TokenKind::Literal, (j + 1).min(n));
    }
    // `'a'` (any single char incl. unicode) → char literal; `'a` → lifetime.
    if i + 1 < n {
        // Find the extent of an identifier-ish run after the quote.
        let mut j = i + 1;
        while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] >= 0x80) {
            j += 1;
        }
        if j < n && bytes[j] == b'\'' && j > i + 1 {
            // 'x' or a multi-byte unicode char literal.
            return (TokenKind::Literal, j + 1);
        }
        if j == i + 1 {
            // `'(` or similar: a char literal of one punct char, e.g. '('.
            if i + 2 < n && bytes[i + 2] == b'\'' {
                return (TokenKind::Literal, i + 3);
            }
            return (TokenKind::Punct('\''), i + 1);
        }
        return (TokenKind::Lifetime, j);
    }
    (TokenKind::Punct('\''), i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // thread_rng in a comment
            /* nested /* thread_rng */ still comment */
            let x = "thread_rng";
            let y = r#"thread_rng "quoted""#;
            let z = b"thread_rng";
        "##;
        assert!(!idents(src).iter().any(|s| s == "thread_rng"));
        let lexed = lex(src);
        assert!(lexed.comments.iter().any(|c| c.text.contains("thread_rng")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert!(toks.iter().any(|t| t.kind == TokenKind::Literal));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "/* a\nb */\nlet x = 1;\n\"s\ntr\"\nfinal_ident";
        let toks = lex(src).tokens;
        let last = toks.last().unwrap();
        assert!(last.is_ident("final_ident"));
        assert_eq!(last.line, 6);
    }

    #[test]
    fn numeric_forms_do_not_split() {
        // Ranges keep their dots as puncts; floats and exponents collapse.
        let toks = lex("0..10 1.5 1e-7 0xFF_u64.count_ones()").tokens;
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 3); // two from `..`, one before count_ones
        assert!(toks.iter().any(|t| t.is_ident("count_ones")));
    }
}
