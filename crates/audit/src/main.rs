//! The `cocco-audit` CLI — the CI gate for the workspace determinism &
//! robustness invariants.
//!
//! ```text
//! cocco-audit [--root <dir>] [--config <file>] [--json] [--deny] [--list-rules]
//! ```
//!
//! Exit codes: 0 = clean (or findings without `--deny`), 1 = findings
//! under `--deny`, 2 = usage/config/IO error.

use cocco_audit::{audit_tree, Config, RULES};
use std::path::PathBuf;
use std::process::ExitCode;
// cocco-audit is itself covered by `audit.toml` allows for D3/R1 (a CLI
// binary measuring its own wall time and panicking on broken invariants
// is fine); keep the code clean anyway.
use std::time::Instant;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    deny: bool,
    list_rules: bool,
}

fn usage() -> &'static str {
    "usage: cocco-audit [--root <dir>] [--config <file>] [--json] [--deny] [--list-rules]\n\
     \n\
     Scans the workspace for determinism & robustness violations.\n\
       --root <dir>     workspace root (default: nearest dir with audit.toml, else cwd)\n\
       --config <file>  audit config (default: <root>/audit.toml)\n\
       --json           machine-readable output\n\
       --deny           exit nonzero when findings survive (the CI gate)\n\
       --list-rules     print the rule set and exit\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: default_root(),
        config: None,
        json: false,
        deny: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a value")?));
            }
            "--json" => args.json = true,
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// The nearest ancestor of the current directory containing `audit.toml`
/// (so the binary works from any crate dir), else the cwd itself.
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("audit.toml").exists() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("cocco-audit: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in RULES {
            println!("{}  {}\n    {}", rule.id, rule.title, rule.detail);
        }
        return ExitCode::SUCCESS;
    }

    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("audit.toml"));
    let config = if config_path.exists() {
        match Config::load(&config_path) {
            Ok(config) => config,
            Err(e) => {
                eprintln!("cocco-audit: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Config::default()
    };

    let start = Instant::now();
    let report = match audit_tree(&args.root, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("cocco-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    if args.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
        println!("cocco-audit: scanned in {wall_ms:.1} ms");
    }

    if args.deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
