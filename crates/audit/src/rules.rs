//! The audit rule set and the per-file analysis that enforces it.
//!
//! Every rule encodes an invariant the workspace actually depends on
//! (see README "Determinism invariants"):
//!
//! - **D1** — no iteration over `HashMap`/`HashSet` (`for … in &map`,
//!   `.iter()`, `.keys()`, `.values()`, `.drain()`, …): hash iteration
//!   order is nondeterministic across processes, so it can leak into
//!   results, traces, or snapshots.
//! - **D2** — RNG discipline: only the seeded `StdRng` shim; no
//!   `thread_rng`, `from_entropy`, or `rand::random`.
//! - **D3** — wall-clock discipline: `Instant::now` / `SystemTime` only
//!   in stats/bench/checkpoint-timer code, never feeding search
//!   decisions.
//! - **D4** — no `std::thread::spawn` (or `thread::Builder`) outside the
//!   sanctioned `cocco-engine` pool.
//! - **R1** — no `.unwrap()` / `.expect()` in library code outside
//!   tests; `.read()/.write()/.lock()` lock-poisoning unwraps are
//!   recognized and allowed (a poisoned lock means a panic already
//!   happened on another thread).
//! - **R2** — no silently swallowed I/O results: `let _ = …;` and
//!   statement-final `.ok();` on filesystem/save paths hide failures the
//!   recovery machinery is supposed to surface; suppress with a reason
//!   when the discard is genuinely deliberate.
//!
//! Findings are suppressed inline with
//! `// cocco-audit: allow(<rule>) <reason>` (reason mandatory; the
//! comment covers its own line, or the next code line when it stands
//! alone) or path-wide via `[[allow]]` in `audit.toml`. Malformed
//! suppressions are themselves findings (**A1**), as are suppressions
//! that no longer suppress anything (**A2**) — exemptions must never
//! outlive the code they excuse.
//!
//! The analysis is token-based and intentionally heuristic: D1 resolves
//! receivers by tracking, per file, which identifiers are declared or
//! assigned with `HashMap`/`HashSet` types. It cannot see through
//! function boundaries; that trade is documented and the escape hatch is
//! an annotated suppression.

use crate::lexer::{lex, Lexed, LineComment, Token, TokenKind};
use std::collections::BTreeSet;

/// Metadata for one audit rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    pub id: &'static str,
    pub title: &'static str,
    pub detail: &'static str,
    /// Whether findings inside test code (`#[cfg(test)]` modules,
    /// `#[test]` fns, `tests/` paths) are skipped.
    pub skip_tests: bool,
}

/// The complete rule set, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        title: "no HashMap/HashSet iteration",
        detail: "hash iteration order is nondeterministic and can leak into results, traces, or snapshots; iterate a sorted projection or a deterministic container instead",
        skip_tests: true,
    },
    RuleInfo {
        id: "D2",
        title: "seeded RNG only",
        detail: "thread_rng/from_entropy/rand::random break seeded reproducibility; derive every RNG from the run seed",
        skip_tests: false,
    },
    RuleInfo {
        id: "D3",
        title: "wall-clock discipline",
        detail: "Instant::now/SystemTime may only feed stats, benches, or checkpoint timers — never search decisions",
        skip_tests: true,
    },
    RuleInfo {
        id: "D4",
        title: "no ad-hoc thread spawns",
        detail: "std::thread::spawn outside the cocco-engine pool bypasses the deterministic batch dispatch",
        skip_tests: true,
    },
    RuleInfo {
        id: "R1",
        title: "no unwrap/expect in library code",
        detail: "user-reachable panics must become typed errors; lock-poisoning unwraps (.read()/.write()/.lock()) are allowed",
        skip_tests: true,
    },
    RuleInfo {
        id: "R2",
        title: "no silently swallowed I/O results",
        detail: "`let _ = …;` / statement-final `.ok();` on I/O paths hides failures the recovery machinery should surface; handle the Result or suppress with a reason",
        skip_tests: true,
    },
    RuleInfo {
        id: "A1",
        title: "malformed suppression",
        detail: "a cocco-audit suppression must be `cocco-audit: allow(<rule>) <reason>` with a known rule and a non-empty reason",
        skip_tests: false,
    },
    RuleInfo {
        id: "A2",
        title: "unused suppression",
        detail: "a suppression that no longer matches a finding must be removed — exemptions must not outlive the code they excuse",
        skip_tests: false,
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// One audit finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative, `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D1` … `R1`, `A1`, `A2`).
    pub rule: &'static str,
    /// Human-oriented description of the specific violation.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
}

/// Per-file analysis result.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived suppressions and path allows.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by an inline suppression.
    pub suppressed: usize,
    /// Findings silenced by an `audit.toml` path allow.
    pub allowed: usize,
}

/// Decides path-level questions for a file; implemented by the driver so
/// the rule engine stays config-agnostic.
pub trait PathPolicy {
    /// True if `rule` is exempt for this file via `audit.toml`.
    fn rule_allowed(&self, rule: &str) -> bool;
}

/// A policy that allows nothing (used by fixtures/tests).
pub struct NoAllows;

impl PathPolicy for NoAllows {
    fn rule_allowed(&self, _rule: &str) -> bool {
        false
    }
}

/// An inline suppression parsed from a `// cocco-audit: …` comment.
#[derive(Debug)]
struct Suppression {
    /// Line of the comment itself.
    comment_line: u32,
    /// Line the suppression covers (same line, or next code line).
    target_line: u32,
    /// Rules it silences.
    rules: Vec<String>,
    /// Whether any finding matched it.
    used: bool,
}

/// True for paths that are test code wholesale.
pub fn path_is_test(rel_path: &str) -> bool {
    rel_path.starts_with("tests/")
        || rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.ends_with("/tests.rs")
}

/// Runs every rule over one file.
pub fn analyze_file(rel_path: &str, source: &str, policy: &dyn PathPolicy) -> FileReport {
    let lexed = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let whole_file_test = path_is_test(rel_path);
    let test_spans = if whole_file_test {
        Vec::new()
    } else {
        find_test_spans(&lexed.tokens)
    };
    let in_test = |line: u32| -> bool {
        whole_file_test || test_spans.iter().any(|&(s, e)| line >= s && line <= e)
    };

    let (mut suppressions, mut raw) = parse_suppressions(&lexed.comments, &lexed.tokens);

    // Raw findings from each content rule.
    scan_d1(&lexed, &mut raw);
    scan_d2(&lexed.tokens, &mut raw);
    scan_d3(&lexed.tokens, &mut raw);
    scan_d4(&lexed.tokens, &mut raw);
    scan_r1(&lexed.tokens, &mut raw);
    scan_r2(&lexed.tokens, &mut raw);
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));

    let mut report = FileReport::default();
    for finding in raw {
        let skip_tests = rule(finding.rule).is_some_and(|info| info.skip_tests);
        if skip_tests && in_test(finding.line) {
            continue;
        }
        // Inline suppressions are consulted first so they register as
        // used even under a path-wide allow (removing the allow later
        // must not surface stale A2s).
        let suppressed = suppressions
            .iter_mut()
            .find(|s| s.target_line == finding.line && s.rules.iter().any(|r| r == finding.rule));
        let is_meta = finding.rule == "A1" || finding.rule == "A2";
        if let Some(s) = suppressed {
            if !is_meta {
                s.used = true;
                report.suppressed += 1;
                continue;
            }
        }
        if !is_meta && policy.rule_allowed(finding.rule) {
            report.allowed += 1;
            continue;
        }
        report.diagnostics.push(Diagnostic {
            path: rel_path.to_string(),
            line: finding.line,
            rule: finding.rule,
            message: finding.message,
            snippet: snippet(&lines, finding.line),
        });
    }

    // A2: suppressions that matched nothing.
    for s in &suppressions {
        if !s.used {
            report.diagnostics.push(Diagnostic {
                path: rel_path.to_string(),
                line: s.comment_line,
                rule: "A2",
                message: format!(
                    "suppression for {} matches no finding — remove it",
                    s.rules.join(", ")
                ),
                snippet: snippet(&lines, s.comment_line),
            });
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    report
}

/// A finding before suppression/allow filtering.
#[derive(Debug)]
struct RawFinding {
    line: u32,
    rule: &'static str,
    message: String,
}

fn snippet(lines: &[&str], line: u32) -> String {
    lines
        .get(line as usize - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

/// Parses `cocco-audit: allow(<rules>) <reason>` comments. Malformed ones
/// become A1 raw findings immediately.
fn parse_suppressions(
    comments: &[LineComment],
    tokens: &[Token],
) -> (Vec<Suppression>, Vec<RawFinding>) {
    let mut suppressions = Vec::new();
    let mut findings = Vec::new();
    for comment in comments {
        // Only plain `// cocco-audit: …` comments are suppressions. Doc
        // comments (`///`, `//!`) are documentation — they may *mention*
        // the syntax (in backticks or prose) without invoking it.
        if comment.text.starts_with('/') || comment.text.starts_with('!') {
            continue;
        }
        let Some(rest) = comment.text.trim().strip_prefix("cocco-audit:") else {
            continue;
        };
        let rest = rest.trim();
        let parsed = (|| {
            let rest = rest.strip_prefix("allow")?.trim_start();
            let rest = rest.strip_prefix('(')?;
            let close = rest.find(')')?;
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let reason = rest[close + 1..].trim();
            Some((rules, reason.to_string()))
        })();
        let Some((rules, reason)) = parsed else {
            findings.push(RawFinding {
                line: comment.line,
                rule: "A1",
                message: "unparseable cocco-audit comment — expected `cocco-audit: allow(<rule>) <reason>`"
                    .into(),
            });
            continue;
        };
        if rules.is_empty() {
            findings.push(RawFinding {
                line: comment.line,
                rule: "A1",
                message: "suppression names no rules".into(),
            });
            continue;
        }
        if let Some(unknown) = rules.iter().find(|r| rule(r).is_none()) {
            findings.push(RawFinding {
                line: comment.line,
                rule: "A1",
                message: format!("suppression names unknown rule `{unknown}`"),
            });
            continue;
        }
        if reason.is_empty() {
            findings.push(RawFinding {
                line: comment.line,
                rule: "A1",
                message: format!(
                    "suppression for {} has no reason — reasons are mandatory",
                    rules.join(", ")
                ),
            });
            continue;
        }
        // Trailing comment covers its own line; a standalone comment
        // covers the next line that has code on it.
        let own_line_has_code = tokens.iter().any(|t| t.line == comment.line);
        let target_line = if own_line_has_code {
            comment.line
        } else {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > comment.line)
                .unwrap_or(comment.line)
        };
        suppressions.push(Suppression {
            comment_line: comment.line,
            target_line,
            rules,
            used: false,
        });
    }
    (suppressions, findings)
}

// ---------------------------------------------------------------------
// Test-span detection
// ---------------------------------------------------------------------

/// Finds `(start_line, end_line)` spans of `#[cfg(test)] mod … { … }` and
/// `#[test] fn … { … }` items by brace matching the token stream.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        let Some((is_test_attr, after_attr)) = parse_attr(tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test_attr {
            i = after_attr;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = after_attr;
        while j < tokens.len() && tokens[j].is_punct('#') {
            match parse_attr(tokens, j) {
                Some((_, next)) => j = next,
                None => break,
            }
        }
        // Find the item body: the first `{` before a `;` ends the
        // signature. `#[cfg(test)] mod tests;` (out-of-line) has no body.
        let mut k = j;
        let mut body_start = None;
        while k < tokens.len() {
            if tokens[k].is_punct(';') {
                break;
            }
            if tokens[k].is_punct('{') {
                body_start = Some(k);
                break;
            }
            k += 1;
        }
        if let Some(open) = body_start {
            let mut depth = 0i64;
            let mut end = open;
            for (idx, t) in tokens.iter().enumerate().skip(open) {
                match t.kind {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            end = idx;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            spans.push((attr_line, tokens[end].line));
            i = end + 1;
        } else {
            i = k + 1;
        }
    }
    spans
}

/// Parses the attribute starting at token `i` (a `#`). Returns
/// `(is_test_marker, index_after_attr)`; `None` if not an attribute.
fn parse_attr(tokens: &[Token], i: usize) -> Option<(bool, usize)> {
    if !tokens.get(i)?.is_punct('#') {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j)?.is_punct('[') {
        return None;
    }
    let open = j;
    let mut depth = 0i64;
    let mut end = open;
    for (idx, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    end = idx;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &tokens[open + 1..end];
    // `#[test]`, `#[bench]`, or `#[cfg(…test…)]`.
    let is_test = match body.first().and_then(Token::ident) {
        Some("test") | Some("bench") => true,
        Some("cfg") => body.iter().skip(1).any(|t| t.is_ident("test")),
        _ => false,
    };
    Some((is_test, end + 1))
}

// ---------------------------------------------------------------------
// D1 — hash iteration
// ---------------------------------------------------------------------

/// Iterator-yielding methods whose order is the map's internal order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn scan_d1(lexed: &Lexed, out: &mut Vec<RawFinding>) {
    let tokens = &lexed.tokens;
    let hash_idents = collect_hash_idents(tokens);
    if hash_idents.is_empty() {
        return;
    }

    // `.method()` receivers.
    for i in 0..tokens.len() {
        if !tokens[i].is_punct('.') {
            continue;
        }
        let Some(method) = tokens.get(i + 1).and_then(Token::ident) else {
            continue;
        };
        if !ITER_METHODS.contains(&method) {
            continue;
        }
        if !tokens.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(recv) = (i > 0).then(|| &tokens[i - 1]).and_then(Token::ident) else {
            continue;
        };
        if hash_idents.contains(recv) {
            out.push(RawFinding {
                line: tokens[i + 1].line,
                rule: "D1",
                message: format!(
                    "`.{method}()` on hash-based `{recv}` — iteration order is nondeterministic"
                ),
            });
        }
    }

    // `for pat in <chain> {` loops.
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Find `in` at depth 0 (the pattern may contain parens/brackets).
        let mut j = i + 1;
        let mut depth = 0i64;
        let mut found_in = None;
        while j < tokens.len() && j < i + 40 {
            match &tokens[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('{') | TokenKind::Punct(';') => break,
                TokenKind::Ident(s) if s == "in" && depth == 0 => {
                    found_in = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(in_at) = found_in else {
            i += 1;
            continue;
        };
        // Expression tokens until the body `{` at depth 0.
        let mut k = in_at + 1;
        let mut depth = 0i64;
        let mut expr_end = None;
        while k < tokens.len() && k < in_at + 60 {
            match &tokens[k].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('{') if depth == 0 => {
                    expr_end = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(end) = expr_end else {
            i = in_at + 1;
            continue;
        };
        // A pure place-expression chain (`&`, `mut`, idents, `.`, `::`)
        // iterates the container directly; method calls in the chain are
        // covered by the receiver pass above.
        let expr = &tokens[in_at + 1..end];
        let mut pure = !expr.is_empty();
        let mut last_ident: Option<&str> = None;
        for t in expr {
            match &t.kind {
                TokenKind::Ident(s) if s == "mut" => {}
                TokenKind::Ident(s) => last_ident = Some(s.as_str()),
                TokenKind::Punct('&') | TokenKind::Punct('.') | TokenKind::Punct(':') => {}
                _ => {
                    pure = false;
                    break;
                }
            }
        }
        if pure {
            if let Some(name) = last_ident {
                if hash_idents.contains(name) {
                    out.push(RawFinding {
                        line: tokens[in_at].line,
                        rule: "D1",
                        message: format!(
                            "`for … in` over hash-based `{name}` — iteration order is nondeterministic"
                        ),
                    });
                }
            }
        }
        i = end + 1;
    }
}

/// Collects, per file, the identifiers declared or assigned with a
/// `HashMap`/`HashSet` type: `name: …HashMap<…>…` annotations (fields,
/// params, lets) and `name = …HashMap::new()…` style assignments.
fn collect_hash_idents(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..tokens.len() {
        let Some(name) = tokens[i].ident() else {
            continue;
        };
        let Some(next) = tokens.get(i + 1) else {
            continue;
        };
        // `name : Type` — not part of a `::` path on either side.
        if next.is_punct(':')
            && !tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && !(i > 0 && tokens[i - 1].is_punct(':'))
        {
            if type_mentions_hash(&tokens[i + 2..]) {
                names.insert(name.to_string());
            }
            continue;
        }
        // `name = <expr containing HashMap/HashSet>` (not `==`, and the
        // token before `name` rules out compound ops like `+=`).
        if next.is_punct('=')
            && !tokens.get(i + 2).is_some_and(|t| t.is_punct('='))
            && expr_mentions_hash(&tokens[i + 2..])
        {
            names.insert(name.to_string());
        }
    }
    names
}

/// Scans a type position (after `:`) and reports whether the type's
/// *head* is `HashMap`/`HashSet` — i.e. the annotated binding itself is
/// the hash container. `Vec<HashMap<…>>` is not a match: iterating the
/// outer `Vec` is deterministic. References (`&`, `&mut`) and path
/// prefixes (`std::collections::`) are looked through.
fn type_mentions_hash(tokens: &[Token]) -> bool {
    for t in tokens.iter().take(16) {
        match &t.kind {
            TokenKind::Ident(s) if s == "HashMap" || s == "HashSet" => return true,
            // Reference / path prefixes and their segments.
            TokenKind::Ident(_) | TokenKind::Punct('&') | TokenKind::Punct(':') => {}
            TokenKind::Lifetime => {}
            // Generic args (or anything else) begin before a hash head
            // appeared — `Vec<HashMap<…>>` is not itself a hash container.
            _ => return false,
        }
    }
    false
}

/// Scans an expression (after `=`) for a `HashMap`/`HashSet` constructor
/// or `collect` turbofish *at nesting depth 0* — a hash container built
/// inside a nested call or closure belongs to some other binding.
fn expr_mentions_hash(tokens: &[Token]) -> bool {
    let mut depth = 0i64;
    for t in tokens.iter().take(64) {
        match &t.kind {
            TokenKind::Ident(s) if depth == 0 && (s == "HashMap" || s == "HashSet") => return true,
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                if depth == 0 {
                    return false;
                }
                depth -= 1;
            }
            TokenKind::Punct(';') if depth == 0 => return false,
            _ => {}
        }
    }
    false
}

// ---------------------------------------------------------------------
// D2 — RNG discipline
// ---------------------------------------------------------------------

fn scan_d2(tokens: &[Token], out: &mut Vec<RawFinding>) {
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        let banned = match name {
            "thread_rng" | "from_entropy" => true,
            // `rand::random` — `random` directly preceded by `rand::`.
            "random" => {
                i >= 3
                    && tokens[i - 1].is_punct(':')
                    && tokens[i - 2].is_punct(':')
                    && tokens[i - 3].is_ident("rand")
            }
            _ => false,
        };
        if banned {
            out.push(RawFinding {
                line: t.line,
                rule: "D2",
                message: format!(
                    "`{name}` draws entropy outside the run seed — derive RNGs from the seeded StdRng"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// D3 — wall-clock discipline
// ---------------------------------------------------------------------

fn scan_d3(tokens: &[Token], out: &mut Vec<RawFinding>) {
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        match name {
            // Only the *read* is flagged; mentioning the type (fields,
            // signatures) is fine.
            "Instant" => {
                let is_now = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"));
                if is_now {
                    out.push(RawFinding {
                        line: t.line,
                        rule: "D3",
                        message: "`Instant::now()` outside stats/bench/checkpoint-timer code"
                            .into(),
                    });
                }
            }
            "SystemTime" => out.push(RawFinding {
                line: t.line,
                rule: "D3",
                message: "`SystemTime` outside stats/bench/checkpoint-timer code".into(),
            }),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// D4 — thread spawns
// ---------------------------------------------------------------------

fn scan_d4(tokens: &[Token], out: &mut Vec<RawFinding>) {
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("thread") {
            continue;
        }
        let path_sep = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'));
        if !path_sep {
            continue;
        }
        let Some(what) = tokens.get(i + 3).and_then(Token::ident) else {
            continue;
        };
        if what == "spawn" || what == "Builder" {
            out.push(RawFinding {
                line: tokens[i].line,
                rule: "D4",
                message: format!(
                    "`thread::{what}` outside the cocco-engine pool — all parallelism goes through the deterministic batch dispatch"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R1 — unwrap/expect
// ---------------------------------------------------------------------

fn scan_r1(tokens: &[Token], out: &mut Vec<RawFinding>) {
    for i in 0..tokens.len() {
        if !tokens[i].is_punct('.') {
            continue;
        }
        let Some(method) = tokens.get(i + 1).and_then(Token::ident) else {
            continue;
        };
        if method != "unwrap" && method != "expect" {
            continue;
        }
        if !tokens.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        // Lock-poisoning pattern: `.read().unwrap()` / `.write()…` /
        // `.lock()…` — a poisoned lock means another thread already
        // panicked, so propagating is the right move.
        if i >= 4 {
            let locky = tokens[i - 4].is_punct('.')
                && tokens[i - 2].is_punct('(')
                && tokens[i - 1].is_punct(')')
                && tokens[i - 3]
                    .ident()
                    .is_some_and(|m| matches!(m, "read" | "write" | "lock"));
            if locky {
                continue;
            }
        }
        out.push(RawFinding {
            line: tokens[i + 1].line,
            rule: "R1",
            message: format!(
                "`.{method}()` in library code — return a typed error or suppress with a reason"
            ),
        });
    }
}

// ---------------------------------------------------------------------
// R2 — silently swallowed I/O results
// ---------------------------------------------------------------------

/// Identifiers that mark a statement as an I/O path. Deliberately
/// excludes bare `write` so `let _ = write!(buf, …)` fmt usage never
/// false-positives; `std::fs::write` is still caught via `fs`.
const IO_IDENTS: &[&str] = &[
    "fs",
    "File",
    "OpenOptions",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "rename",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "create_dir",
    "create_dir_all",
    "read_to_string",
    "read_dir",
    "set_len",
    "atomic_save",
    "save",
    "save_with",
];

fn span_mentions_io(tokens: &[Token]) -> bool {
    tokens
        .iter()
        .any(|t| t.ident().is_some_and(|s| IO_IDENTS.contains(&s)))
}

fn scan_r2(tokens: &[Token], out: &mut Vec<RawFinding>) {
    // Pattern A: `let _ = <expr containing an I/O call>;` — the binding
    // discards the Result wholesale.
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("let") {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|t| t.is_ident("_")) {
            continue;
        }
        if !tokens.get(i + 2).is_some_and(|t| t.is_punct('=')) {
            continue;
        }
        // The discarded expression runs to the first `;` at depth 0.
        let mut depth = 0i64;
        let mut end = None;
        for (idx, t) in tokens.iter().enumerate().skip(i + 3).take(200) {
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
                TokenKind::Punct(';') if depth == 0 => {
                    end = Some(idx);
                    break;
                }
                _ => {}
            }
        }
        let Some(end) = end else { continue };
        if span_mentions_io(&tokens[i + 3..end]) {
            out.push(RawFinding {
                line: tokens[i].line,
                rule: "R2",
                message:
                    "`let _ = …;` discards an I/O Result — handle it or suppress with a reason"
                        .into(),
            });
        }
    }

    // Pattern B: statement-final `.ok();` on an I/O chain — converts the
    // Result to an Option only to drop it.
    for i in 0..tokens.len().saturating_sub(4) {
        let run = tokens[i].is_punct('.')
            && tokens[i + 1].is_ident("ok")
            && tokens[i + 2].is_punct('(')
            && tokens[i + 3].is_punct(')')
            && tokens[i + 4].is_punct(';');
        if !run {
            continue;
        }
        // Walk back to the statement start: the previous `;`, an
        // enclosing `{`/`(`/`[`, or a depth-0 `}` (the end of a
        // preceding block statement). Walking backward, closers open
        // nesting.
        let mut depth = 0i64;
        let mut start = 0usize;
        for j in (0..i).rev() {
            match tokens[j].kind {
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth += 1,
                TokenKind::Punct('}') => {
                    if depth == 0 {
                        start = j + 1;
                        break;
                    }
                    depth += 1;
                }
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                    if depth == 0 {
                        start = j + 1;
                        break;
                    }
                    depth -= 1;
                }
                TokenKind::Punct(';') if depth == 0 => {
                    start = j + 1;
                    break;
                }
                _ => {}
            }
        }
        let stmt = &tokens[start..i];
        // `let opt = save().ok();` binds the Option, `return x.ok();`
        // returns it — neither discards.
        let consumes = stmt
            .iter()
            .any(|t| t.ident().is_some_and(|s| s == "let" || s == "return"));
        if consumes {
            continue;
        }
        if span_mentions_io(stmt) {
            out.push(RawFinding {
                line: tokens[i].line,
                rule: "R2",
                message: "statement-final `.ok();` discards an I/O Result — handle it or suppress with a reason"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> FileReport {
        analyze_file("crates/x/src/lib.rs", src, &NoAllows)
    }

    fn rules_of(report: &FileReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d1_flags_typed_and_assigned_receivers() {
        let src = r#"
            use std::collections::{HashMap, HashSet};
            struct S { index: HashMap<u32, u32> }
            fn f(s: &S) {
                let mut seen = HashSet::new();
                seen.insert(1);
                for k in s.index.keys() { let _ = k; }
                for v in &seen { let _ = v; }
                let names: HashMap<String, u32> = HashMap::new();
                let _ = names.values().count();
            }
        "#;
        let report = run(src);
        assert_eq!(rules_of(&report), vec!["D1", "D1", "D1"]);
    }

    #[test]
    fn d1_ignores_vec_receivers_and_lookups() {
        let src = r#"
            use std::collections::HashMap;
            fn f(items: Vec<u32>, map: HashMap<u32, u32>) -> u32 {
                let total: u32 = items.iter().sum();
                total + map.get(&1).copied().unwrap_or(0) + map.len() as u32
            }
        "#;
        assert!(run(src).diagnostics.is_empty());
    }

    #[test]
    fn d2_flags_entropy_sources_even_in_tests() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let _ = rand::random::<u32>(); let _r = thread_rng(); }
            }
        "#;
        assert_eq!(rules_of(&run(src)), vec!["D2", "D2"]);
    }

    #[test]
    fn d3_flags_reads_not_type_mentions() {
        let src = r#"
            use std::time::Instant;
            struct T { started: Instant }
            fn go() -> T { T { started: Instant::now() } }
        "#;
        assert_eq!(rules_of(&run(src)), vec!["D3"]);
    }

    #[test]
    fn d4_and_r1_skip_test_spans() {
        let src = r#"
            fn lib_code(x: Option<u32>) -> u32 { x.unwrap() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let h = std::thread::spawn(|| 1);
                    assert_eq!(h.join().unwrap(), 1);
                }
            }
        "#;
        assert_eq!(rules_of(&run(src)), vec!["R1"]);
    }

    #[test]
    fn r1_lock_poisoning_is_allowed() {
        let src = r#"
            use std::sync::{Mutex, RwLock};
            fn f(m: &Mutex<u32>, l: &RwLock<u32>) -> u32 {
                *m.lock().unwrap() + *l.read().unwrap() + *l.write().expect("w")
            }
        "#;
        assert!(run(src).diagnostics.is_empty());
    }

    #[test]
    fn r2_flags_discarded_io_results() {
        let src = r#"
            fn f(path: &std::path::Path, text: &str) {
                let _ = std::fs::write(path, text);
                std::fs::remove_file(path).ok();
                std::fs::create_dir_all(path).ok();
            }
        "#;
        assert_eq!(rules_of(&run(src)), vec!["R2", "R2", "R2"]);
    }

    #[test]
    fn r2_ignores_non_io_discards_and_consumed_options() {
        let src = r#"
            use std::fmt::Write as _;
            fn f(path: &std::path::Path, v: Vec<u32>) -> Option<()> {
                // Non-I/O discards are fine.
                let _ = v.len();
                // fmt write! returns a Result too, but it is not I/O.
                let mut s = String::new();
                let _ = write!(s, "{}", v.len());
                // Binding or returning the Option consumes it.
                let removed = std::fs::remove_file(path).ok();
                let _x = removed;
                return std::fs::remove_file(path).ok();
            }
        "#;
        let report = run(src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn r2_skips_tests_and_accepts_reasoned_suppressions() {
        let src = r#"
            fn lib(path: &std::path::Path) {
                // cocco-audit: allow(R2) best-effort cleanup; error already reported
                let _ = std::fs::remove_file(path);
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let _ = std::fs::remove_file("x");
                    std::fs::remove_dir_all("y").ok();
                }
            }
        "#;
        let report = run(src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn suppressions_cover_own_or_next_line_and_require_reasons() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                // cocco-audit: allow(R1) checked non-empty by caller
                x.unwrap()
            }
            fn g(x: Option<u32>) -> u32 {
                x.unwrap() // cocco-audit: allow(R1) invariant: always Some
            }
        "#;
        let report = run(src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressed, 2);
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_a1() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                // cocco-audit: allow(R1)
                x.unwrap()
            }
            // cocco-audit: allow(Z9) because reasons
            fn g() {}
        "#;
        let rules = rules_of(&run(src));
        // The reasonless suppression is A1 and does NOT silence the unwrap.
        assert!(rules.contains(&"A1"));
        assert!(rules.contains(&"R1"));
        assert_eq!(rules.iter().filter(|r| **r == "A1").count(), 2);
    }

    #[test]
    fn unused_suppression_is_a2() {
        let src = r#"
            // cocco-audit: allow(D2) historical; the call is gone
            fn clean() {}
        "#;
        assert_eq!(rules_of(&run(src)), vec!["A2"]);
    }

    #[test]
    fn tests_paths_are_whole_file_test_code() {
        let src = "fn helper(x: Option<u32>) -> u32 { x.unwrap() }";
        let report = analyze_file("tests/tests/helpers.rs", src, &NoAllows);
        assert!(report.diagnostics.is_empty());
    }
}
