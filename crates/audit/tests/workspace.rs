//! The meta-test: the live workspace itself must audit clean.
//!
//! This is the same gate CI runs via `cocco-audit --deny`, expressed as a
//! plain test so `cargo test` alone catches a regression — a new hash
//! iteration, an entropy-seeded RNG, a stray `.unwrap()` — without
//! anyone remembering to run the binary.

use cocco_audit::audit_workspace;
use std::path::PathBuf;

#[test]
fn live_workspace_has_zero_unsuppressed_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    assert!(
        root.join("audit.toml").is_file(),
        "workspace root not found from CARGO_MANIFEST_DIR"
    );
    let report = audit_workspace(&root).unwrap();
    assert!(
        report.files_scanned > 50,
        "suspiciously small scan: {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "the workspace must audit clean:\n{}",
        report.render_human()
    );
}
