// Fixture: R2 — silently swallowed I/O results.
use std::fmt::Write as _;
use std::path::Path;

fn flagged(path: &Path, text: &str) {
    let _ = std::fs::write(path, text);
    std::fs::remove_file(path).ok();
    let _ = std::fs::File::create(path).and_then(|mut f| {
        use std::io::Write;
        f.write_all(text.as_bytes())
    });
}

fn not_flagged(path: &Path, values: &[u32]) -> Option<()> {
    // Non-I/O discards are fine.
    let _ = values.len();
    // fmt `write!` returns a Result, but it is not I/O.
    let mut rendered = String::new();
    let _ = write!(rendered, "{}", values.len());
    // Binding or returning the Option consumes it rather than dropping it.
    let removed = std::fs::remove_file(path).ok();
    let _kept = removed;
    // A reasoned suppression covers a deliberate discard.
    // cocco-audit: allow(R2) best-effort cleanup; the original error is what gets reported
    let _ = std::fs::remove_file(path);
    std::fs::remove_file(path).ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn swallowing_in_tests_is_allowed() {
        let _ = std::fs::remove_file("scratch");
        std::fs::remove_dir_all("scratch-dir").ok();
    }
}
