// Fixture: D2 — RNG discipline. Unlike the other rules, D2 applies in
// test code too: entropy-seeded tests are flaky by construction.
use rand::rngs::StdRng;
use rand::SeedableRng;

fn flagged() {
    let mut rng = rand::thread_rng();
    let seeded = StdRng::from_entropy();
    let coin: bool = rand::random();
}

fn not_flagged() {
    let rng = StdRng::seed_from_u64(42);
    let forked = StdRng::seed_from_u64(7 ^ 42);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn still_flagged_in_tests() {
        let rng = rand::thread_rng();
    }
}
