// Fixture: D1 — iteration over hash-ordered containers. Golden
// expectations live in the `.expected` sidecar.
use std::collections::{BTreeMap, HashMap, HashSet};

fn flagged(map: &HashMap<u32, u32>, set: &HashSet<u32>) {
    for (k, v) in map.iter() {}
    for k in map.keys() {}
    for v in map.values() {}
    for x in set {}
    let _: Vec<u32> = map.keys().copied().collect();
}

fn flagged_locals() {
    let mut scratch = HashMap::new();
    scratch.insert(1u32, 2u32);
    for entry in scratch.drain() {}
    let lookup: HashSet<String> = HashSet::new();
    let _ = lookup.iter().count();
}

fn not_flagged(tree: &BTreeMap<u32, u32>, rows: &[u32]) {
    // Ordered containers and slices iterate deterministically.
    for (k, v) in tree.iter() {}
    for r in rows.iter() {}
    let names: Vec<String> = Vec::new();
    for n in names.iter() {}
    // A Vec *of* hash maps: iterating the outer Vec is fine.
    let levels: Vec<HashMap<u32, u32>> = Vec::new();
    for level in levels.iter() {}
    // Point lookups into a hash map are fine — only iteration is banned.
    let table: HashMap<u32, u32> = HashMap::new();
    let _ = table.get(&1);
    let _ = table.len();
}
