// Fixture: D3 — wall-clock reads outside stats/bench/timer modules.
use std::time::{Duration, Instant};

fn flagged() -> Duration {
    let start = Instant::now();
    let _ = std::time::SystemTime::now();
    start.elapsed()
}

fn not_flagged(budget: Duration) {
    // Mentioning the types (fields, signatures, arithmetic) is fine —
    // only *reading* the clock is a determinism hazard.
    let half: Duration = budget / 2;
    let _ = Duration::from_millis(5);
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_allowed() {
        let start = std::time::Instant::now();
        assert!(start.elapsed().as_secs() < 1);
    }
}
