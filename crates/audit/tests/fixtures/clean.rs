// Fixture: idiomatic code that trips no rule.
use std::collections::BTreeMap;
use std::time::Duration;

pub struct Registry {
    entries: BTreeMap<String, u64>,
}

impl Registry {
    pub fn lookup(&self, name: &str) -> Option<u64> {
        self.entries.get(name).copied()
    }

    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }

    pub fn budget(&self) -> Result<Duration, String> {
        let raw = self.lookup("budget_ms").ok_or("missing budget")?;
        Ok(Duration::from_millis(raw))
    }
}
