// Fixture: inline suppressions and the A1/A2 meta-rules.

fn suppressed_findings() {
    // A trailing suppression covers its own line…
    let x = "1".parse::<u32>().unwrap(); // cocco-audit: allow(R1) fixture constant always parses
    // …and a standalone suppression covers the next code line.
    // cocco-audit: allow(D3) fixture exercises next-line targeting
    let t = std::time::Instant::now();
}

fn missing_reason() {
    // cocco-audit: allow(R1)
    let y = "2".parse::<u32>().unwrap();
}

fn unknown_rule() {
    // cocco-audit: allow(Z9) the rule id does not exist
    let z = 4;
}

fn not_an_allow() {
    // cocco-audit: suppress R1 please
    let w = 5;
}

fn unused() {
    // cocco-audit: allow(D4) nothing on the next line spawns a thread
    let v = 3;
}
