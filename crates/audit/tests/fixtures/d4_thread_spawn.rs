// Fixture: D4 — ad-hoc thread creation outside the engine pool.

fn flagged() {
    let handle = std::thread::spawn(|| 1 + 1);
    let _ = handle.join();
    let builder = std::thread::Builder::new();
}

fn not_flagged() {
    // Naming the current thread, sleeping, or joining handles is fine —
    // only *creating* threads is restricted.
    let _ = std::thread::current();
    std::thread::yield_now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn helper_threads_in_tests_are_allowed() {
        let h = std::thread::spawn(|| 2 + 2);
        assert_eq!(h.join().unwrap(), 4);
    }
}
