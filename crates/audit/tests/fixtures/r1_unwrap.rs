// Fixture: R1 — `.unwrap()`/`.expect()` in library code.
use std::sync::RwLock;

fn flagged(values: &[u32]) -> u32 {
    let first = values.first().unwrap();
    let parsed: u32 = "7".parse().expect("parses");
    first + parsed
}

fn not_flagged(lock: &RwLock<u32>) -> u32 {
    // Lock poisoning means another thread already panicked; propagating
    // is the only sane response, so these are auto-allowed.
    let guard = lock.read().unwrap();
    let mut w = lock.write().expect("poisoned");
    *w += 1;
    *guard
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_allowed() {
        let v = vec![1, 2, 3];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
