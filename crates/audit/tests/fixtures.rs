//! Golden-file tests for the rule engine.
//!
//! Every `fixtures/<name>.rs` is a known-bad (or known-clean) snippet;
//! its `fixtures/<name>.expected` sidecar lists the diagnostics the
//! engine must produce, one `line:RULE` per line in (line, rule) order,
//! followed by a `suppressed=<n>` count. The fixtures are excluded from
//! the live workspace scan via `audit.toml`, so they never have to
//! compile — they only have to lex.

use cocco_audit::{analyze_file, Config, NoAllows};
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Renders a fixture's diagnostics in the `.expected` format.
fn render(name: &str) -> String {
    let source = std::fs::read_to_string(fixture_dir().join(name)).unwrap();
    // A src-like relative path, so no whole-file test exemption applies.
    let rel = format!("crates/fixture/src/{name}");
    let report = analyze_file(&rel, &source, &NoAllows);
    let mut lines: Vec<(u32, &str)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule))
        .collect();
    lines.sort_unstable();
    let mut out = String::new();
    for (line, rule) in lines {
        out.push_str(&format!("{line}:{rule}\n"));
    }
    out.push_str(&format!("suppressed={}\n", report.suppressed));
    out
}

#[test]
fn every_fixture_matches_its_golden_expectations() {
    let mut checked = 0;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(fixture_dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_str().unwrap();
        let golden_path = path.with_extension("expected");
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|_| panic!("{name} has no .expected sidecar"));
        assert_eq!(render(name), golden, "{name} diverged from its golden file");
        checked += 1;
    }
    assert!(checked >= 7, "fixture corpus shrank: only {checked} files");
}

#[test]
fn every_rule_has_at_least_one_fixture_finding() {
    // The corpus stays honest: if a rule id appears in RULES but no
    // fixture triggers it, its detection could silently rot.
    let mut seen: Vec<&str> = Vec::new();
    for entry in std::fs::read_dir(fixture_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "expected") {
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap();
        for line in golden.lines() {
            if let Some((_, rule)) = line.split_once(':') {
                if let Some(info) = cocco_audit::rule(rule) {
                    seen.push(info.id);
                }
            }
        }
    }
    for info in cocco_audit::RULES {
        assert!(
            seen.contains(&info.id),
            "rule {} has no fixture-backed expectation",
            info.id
        );
    }
}

#[test]
fn fixtures_are_excluded_but_allowlist_paths_round_trip() {
    // The repo config must exclude the fixture corpus (it is deliberately
    // full of violations) while its allows survive a parse round-trip.
    let root = fixture_dir().join("../../../..").canonicalize().unwrap();
    let config = Config::load(&root.join("audit.toml")).unwrap();
    assert!(config.is_excluded("crates/audit/tests/fixtures/d2_rng.rs"));
    assert!(!config.is_excluded("crates/audit/src/rules.rs"));
    for allow in &config.allows {
        assert!(
            config.is_allowed(&allow.rule, &allow.path),
            "allow({}) for {} does not match its own path",
            allow.rule,
            allow.path
        );
        assert!(!allow.reason.is_empty(), "reasons are mandatory");
    }
    // Prefix semantics: a directory allow covers files beneath it, and
    // only for the named rule.
    assert!(config.is_allowed("D3", "crates/audit/src/main.rs"));
    assert!(!config.is_allowed("D1", "crates/audit/src/main.rs"));
    // D3 is otherwise confined to the telemetry Stopwatch — the bench
    // harness and everything else must time through it.
    assert!(config.is_allowed("D3", "crates/telemetry/src/clock.rs"));
    assert!(!config.is_allowed("D3", "crates/telemetry/src/sink.rs"));
    assert!(!config.is_allowed("D3", "crates/bench/src/main.rs"));
    assert!(!config.is_allowed("D3", "crates/sim/src/evaluator.rs"));
}
