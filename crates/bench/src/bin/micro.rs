//! Micro-benchmarks of the framework's hot paths: model construction, the
//! consumption-centric derivation, subgraph statistics (cold and cached),
//! partition repair, full partition evaluation and the evaluation engine's
//! serial-vs-parallel batch path.
//!
//! Timed with a small std-only harness (the offline toolchain has no
//! criterion): each case is warmed up, then sampled until ~0.25 s of
//! wall-clock or 50 samples, whichever comes first, reporting the median
//! and minimum per-iteration time.
//!
//! Modes:
//!
//! * `cargo run --release -p cocco-bench --bin micro` — the full suite,
//!   ending with the engine benchmark (GA on `resnet50`, serial vs. 4
//!   worker threads) and a `BENCH_engine.json` summary at the repository
//!   root;
//! * `cargo run --release -p cocco-bench --bin micro -- --smoke` — the CI
//!   smoke mode: a scaled-down engine run that exercises the parallel
//!   batch path and asserts serial/parallel results are bit-identical.

use cocco::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Times `f`, printing `name: median (min) per iteration`.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up and batch-size calibration: aim for batches of >= 1 ms.
    let mut batch = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let budget = Duration::from_millis(250);
    let mut samples = Vec::new();
    let run_start = Instant::now();
    while samples.len() < 50 && (run_start.elapsed() < budget || samples.len() < 5) {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(start.elapsed().as_secs_f64() / f64::from(batch));
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let min = samples[0];
    println!(
        "{name:<42} {:>12} (min {})",
        fmt_time(median),
        fmt_time(min)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// One timed GA run at a fixed thread count; returns wall time plus the
/// outcome fingerprint and engine statistics.
fn ga_run(
    model: &Graph,
    budget: u64,
    population: usize,
    threads: u32,
) -> (Duration, f64, Option<Genome>, EngineStats) {
    // A fresh evaluator per run so both arms start with cold caches.
    let evaluator = Evaluator::new(model, AcceleratorConfig::default());
    let ctx = SearchContext::new(
        model,
        &evaluator,
        BufferSpace::paper_shared(),
        Objective::paper_energy_capacity(),
        budget,
    )
    .with_engine(EngineConfig::with_threads(threads));
    let ga = CoccoGa::default().with_population(population).with_seed(42);
    let start = Instant::now();
    let outcome = ga.run(&ctx);
    (
        start.elapsed(),
        outcome.best_cost,
        outcome.best,
        ctx.engine().stats(),
    )
}

/// The engine benchmark: serial vs. parallel GA on a ≥ 50-node model.
/// Asserts bit-identical results (every host) and the ≥ 2× batch-path
/// speedup (hosts with ≥ 4 CPUs — a single-core container cannot
/// physically speed up, so there the number is informational), and returns
/// the JSON summary document.
fn engine_bench(smoke: bool) -> serde_json::Value {
    let model = cocco::graph::models::resnet50();
    let (budget, population, threads) = if smoke { (600, 50, 4) } else { (3_000, 100, 4) };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\n== engine: GA on {} ({} nodes), budget {budget}, population {population}, host CPUs {host_cpus} ==\n",
        model.name(),
        model.len()
    );

    let (serial_wall, serial_cost, serial_best, _) = ga_run(&model, budget, population, 1);
    let (parallel_wall, parallel_cost, parallel_best, stats) =
        ga_run(&model, budget, population, threads);

    assert_eq!(
        serial_cost, parallel_cost,
        "engine determinism violated: serial and parallel best costs differ"
    );
    assert_eq!(
        serial_best, parallel_best,
        "engine determinism violated: serial and parallel best genomes differ"
    );
    assert!(stats.cache_hits > 0, "GA run never hit the eval cache");

    let serial_ms = serial_wall.as_secs_f64() * 1e3;
    let parallel_ms = parallel_wall.as_secs_f64() * 1e3;
    let speedup = serial_ms / parallel_ms;
    println!(
        "serial  (1 thread)   : {:>10}",
        fmt_time(serial_wall.as_secs_f64())
    );
    println!(
        "parallel ({threads} threads) : {:>10}",
        fmt_time(parallel_wall.as_secs_f64())
    );
    println!("speedup              : {speedup:.2}x");
    println!(
        "cache                : {} evals, {} hits ({:.0}%), {} entries",
        stats.evals,
        stats.cache_hits,
        stats.hit_rate() * 100.0,
        stats.cache_entries,
    );
    println!("results              : bit-identical serial vs parallel ✓");
    if host_cpus >= 4 && !smoke {
        assert!(
            speedup >= 2.0,
            "batched path must be >= 2x faster than serial at {threads} threads \
             on a {host_cpus}-CPU host (measured {speedup:.2}x)"
        );
    } else if host_cpus < 2 {
        println!(
            "note                 : host has {host_cpus} CPU — 4 workers timeslice one core, \
             so the speedup above measures overhead, not parallelism"
        );
    }

    let doc = vec![
        ("model".to_string(), serde_json::to_value(&model.name())),
        (
            "nodes".to_string(),
            serde_json::to_value(&(model.len() as u64)),
        ),
        ("budget".to_string(), serde_json::to_value(&budget)),
        (
            "population".to_string(),
            serde_json::to_value(&(population as u64)),
        ),
        (
            "threads".to_string(),
            serde_json::to_value(&u64::from(threads)),
        ),
        (
            "host_cpus".to_string(),
            serde_json::to_value(&(host_cpus as u64)),
        ),
        ("serial_ms".to_string(), serde_json::to_value(&serial_ms)),
        (
            "parallel_ms".to_string(),
            serde_json::to_value(&parallel_ms),
        ),
        ("speedup".to_string(), serde_json::to_value(&speedup)),
        ("evals".to_string(), serde_json::to_value(&stats.evals)),
        (
            "cache_hits".to_string(),
            serde_json::to_value(&stats.cache_hits),
        ),
        (
            "cache_hit_rate".to_string(),
            serde_json::to_value(&stats.hit_rate()),
        ),
        ("deterministic".to_string(), serde_json::to_value(&true)),
    ];
    serde_json::Value::Object(doc)
}

fn full_suite() {
    println!("== micro-benchmarks (median per iteration) ==\n");

    bench("models/build_resnet50", cocco::graph::models::resnet50);
    bench("models/build_googlenet", cocco::graph::models::googlenet);

    {
        let model = cocco::graph::models::googlenet();
        let members: Vec<_> = model.node_ids().collect();
        let mapper = Mapper::default();
        bench("tiling/derive_scheme_googlenet_whole", || {
            derive_scheme(&model, &members, &mapper).unwrap()
        });
    }

    {
        let model = cocco::graph::models::resnet50();
        let members: Vec<_> = model.node_ids().take(12).collect();
        bench("evaluator/subgraph_stats_cold", || {
            // A fresh evaluator per iteration so the cache never warms.
            let eval = Evaluator::new(&model, AcceleratorConfig::default());
            eval.subgraph_stats(&members).unwrap()
        });
        let eval = Evaluator::new(&model, AcceleratorConfig::default());
        eval.subgraph_stats(&members).unwrap();
        bench("evaluator/subgraph_stats_cached", || {
            eval.subgraph_stats(&members).unwrap()
        });
        let partition = repair(&model, Partition::depth_groups(&model, 5), &|_| true);
        let subgraphs = partition.subgraphs();
        let buffer = BufferConfig::shared(2 << 20);
        bench("evaluator/eval_partition_depth5", || {
            eval.eval_partition(&subgraphs, &buffer, EvalOptions::default())
                .unwrap()
        });
    }

    {
        let model = cocco::graph::models::googlenet();
        let mut rng = StdRng::seed_from_u64(42);
        let assignments: Vec<Vec<u32>> = (0..32)
            .map(|_| (0..model.len()).map(|_| rng.gen_range(0..12)).collect())
            .collect();
        let mut i = 0;
        bench("repair/random_googlenet", || {
            let a = assignments[i % assignments.len()].clone();
            i += 1;
            repair(&model, Partition::from_assignment(a), &|m| m.len() <= 16)
        });
    }

    {
        let model = cocco::graph::models::googlenet();
        let eval = Evaluator::new(&model, AcceleratorConfig::default());
        bench("search/ga_500_samples_googlenet", || {
            let ctx = SearchContext::new(
                &model,
                &eval,
                BufferSpace::paper_shared(),
                Objective::paper_energy_capacity(),
                500,
            );
            CoccoGa::default()
                .with_population(50)
                .with_seed(1)
                .run(&ctx)
        });
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(bad) = args.iter().find(|a| *a != "--smoke") {
        eprintln!("unknown argument `{bad}` (only --smoke is supported)");
        std::process::exit(2);
    }

    if smoke {
        // CI smoke: exercise the parallel batch path and the determinism
        // invariant; skip the slow timing loops.
        engine_bench(true);
        println!("\nsmoke OK");
        return;
    }

    full_suite();
    let doc = engine_bench(false);
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    let text = serde_json::to_string_pretty(&doc).expect("summary serializes");
    match std::fs::write(&path, format!("{text}\n")) {
        Ok(()) => println!("\n(engine summary written to {})", path.display()),
        Err(e) => eprintln!("\n(could not write {}: {e})", path.display()),
    }
}
