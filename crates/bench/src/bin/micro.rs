//! Micro-benchmarks of the framework's hot paths: model construction, the
//! consumption-centric derivation, subgraph statistics (cold and cached),
//! partition repair, full partition evaluation and the evaluation engine's
//! serial-vs-parallel batch path.
//!
//! Timed with a small std-only harness (the offline toolchain has no
//! criterion): each case is warmed up, then sampled until ~0.25 s of
//! wall-clock or 50 samples, whichever comes first, reporting the median
//! and minimum per-iteration time.
//!
//! Modes:
//!
//! * `cargo run --release -p cocco-bench --bin micro` — the full suite,
//!   ending with the engine benchmark (the same seeded GA on `resnet50`
//!   through the full-evaluation reference, the incremental serial path
//!   and the incremental parallel path) and a `BENCH_engine.json` summary
//!   at the repository root recording wall times, the subgraph-level hit
//!   rate and the incremental scoring reduction;
//! * `cargo run --release -p cocco-bench --bin micro -- --smoke
//!   [--threads <n>]` — the CI smoke mode: a scaled-down run of the same
//!   three arms that asserts bit-identical results and the >= 30 %
//!   subgraph-scoring reduction, at the requested worker count.

use cocco::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Times `f`, printing `name: median (min) per iteration`.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up and batch-size calibration: aim for batches of >= 1 ms.
    let mut batch = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let budget = Duration::from_millis(250);
    let mut samples = Vec::new();
    let run_start = Instant::now();
    while samples.len() < 50 && (run_start.elapsed() < budget || samples.len() < 5) {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(start.elapsed().as_secs_f64() / f64::from(batch));
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let min = samples[0];
    println!(
        "{name:<42} {:>12} (min {})",
        fmt_time(median),
        fmt_time(min)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// One timed GA run under an explicit engine configuration; returns wall
/// time plus the outcome fingerprint and engine statistics.
fn ga_run(
    model: &Graph,
    budget: u64,
    population: usize,
    engine: EngineConfig,
) -> (Duration, f64, Option<Genome>, EngineStats) {
    // A fresh evaluator per run so every arm starts with cold caches.
    let evaluator = Evaluator::new(model, AcceleratorConfig::default());
    let ctx = SearchContext::new(
        model,
        &evaluator,
        BufferSpace::paper_shared(),
        Objective::paper_energy_capacity(),
        budget,
    )
    .with_engine(engine);
    let ga = CoccoGa::default().with_population(population).with_seed(42);
    let start = Instant::now();
    let outcome = ga.run(&ctx);
    (
        start.elapsed(),
        outcome.best_cost,
        outcome.best,
        ctx.engine().stats(),
    )
}

/// The engine benchmark: the same seeded GA on a ≥ 50-node model through
/// three arms — full-path serial (the reference), incremental serial, and
/// incremental at `threads` workers. Asserts bit-identical results across
/// all arms (every host), a ≥ 30 % reduction in full subgraph scorings on
/// the incremental path, and the ≥ 2× batch-path speedup (hosts with ≥ 4
/// CPUs — a single-core container cannot physically speed up, so there the
/// number is informational). Returns the JSON summary document.
fn engine_bench(smoke: bool, threads: u32) -> serde_json::Value {
    let model = cocco::graph::models::resnet50();
    let (budget, population) = if smoke { (600, 50) } else { (3_000, 100) };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\n== engine: GA on {} ({} nodes), budget {budget}, population {population}, host CPUs {host_cpus} ==\n",
        model.name(),
        model.len()
    );

    let (full_wall, full_cost, full_best, full_stats) = ga_run(
        &model,
        budget,
        population,
        EngineConfig::serial().without_incremental(),
    );
    let (serial_wall, serial_cost, serial_best, serial_stats) =
        ga_run(&model, budget, population, EngineConfig::serial());
    let (parallel_wall, parallel_cost, parallel_best, stats) = ga_run(
        &model,
        budget,
        population,
        EngineConfig::with_threads(threads),
    );

    assert_eq!(
        full_cost, serial_cost,
        "engine determinism violated: full and incremental best costs differ"
    );
    assert_eq!(
        full_best, serial_best,
        "engine determinism violated: full and incremental best genomes differ"
    );
    assert_eq!(
        serial_cost, parallel_cost,
        "engine determinism violated: serial and parallel best costs differ"
    );
    assert_eq!(
        serial_best, parallel_best,
        "engine determinism violated: serial and parallel best genomes differ"
    );
    assert!(stats.cache_hits > 0, "GA run never hit the eval cache");
    assert!(
        stats.subgraph_reused > 0,
        "GA offspring never reused a memoized subgraph term"
    );
    let scoring_reduction =
        1.0 - serial_stats.subgraph_scorings as f64 / full_stats.subgraph_scorings.max(1) as f64;
    assert!(
        scoring_reduction >= 0.30,
        "incremental path must avoid >= 30% of full subgraph scorings \
         (full {} vs incremental {}, reduction {:.0}%)",
        full_stats.subgraph_scorings,
        serial_stats.subgraph_scorings,
        scoring_reduction * 100.0,
    );

    let full_ms = full_wall.as_secs_f64() * 1e3;
    let serial_ms = serial_wall.as_secs_f64() * 1e3;
    let parallel_ms = parallel_wall.as_secs_f64() * 1e3;
    let speedup = serial_ms / parallel_ms;
    println!(
        "full path (1 thread) : {:>10}  ({} subgraph scorings)",
        fmt_time(full_wall.as_secs_f64()),
        full_stats.subgraph_scorings,
    );
    println!(
        "incremental (1 thr)  : {:>10}  ({} scorings, {} cached, {} reused)",
        fmt_time(serial_wall.as_secs_f64()),
        serial_stats.subgraph_scorings,
        serial_stats.subgraph_hits,
        serial_stats.subgraph_reused,
    );
    println!(
        "incremental ({threads} thr)  : {:>10}",
        fmt_time(parallel_wall.as_secs_f64())
    );
    println!("speedup (threads)    : {speedup:.2}x");
    println!(
        "scoring reduction    : {:.0}% fewer full subgraph scorings",
        scoring_reduction * 100.0
    );
    println!(
        "subgraph hit rate    : {:.0}%",
        serial_stats.subgraph_hit_rate() * 100.0
    );
    println!(
        "cache                : {} evals, {} hits ({:.0}%), {} roll-ups + {} terms",
        stats.evals,
        stats.cache_hits,
        stats.hit_rate() * 100.0,
        stats.cache_entries,
        stats.subgraph_entries,
    );
    println!("results              : bit-identical full vs incremental vs parallel ✓");
    if host_cpus >= 4 && !smoke {
        assert!(
            speedup >= 2.0,
            "batched path must be >= 2x faster than serial at {threads} threads \
             on a {host_cpus}-CPU host (measured {speedup:.2}x)"
        );
    } else if host_cpus < 2 {
        println!(
            "note                 : host has {host_cpus} CPU — {threads} workers timeslice one core, \
             so the speedup above measures overhead, not parallelism"
        );
    }

    let doc = vec![
        ("model".to_string(), serde_json::to_value(&model.name())),
        (
            "nodes".to_string(),
            serde_json::to_value(&(model.len() as u64)),
        ),
        ("budget".to_string(), serde_json::to_value(&budget)),
        (
            "population".to_string(),
            serde_json::to_value(&(population as u64)),
        ),
        (
            "threads".to_string(),
            serde_json::to_value(&u64::from(threads)),
        ),
        (
            "host_cpus".to_string(),
            serde_json::to_value(&(host_cpus as u64)),
        ),
        ("full_ms".to_string(), serde_json::to_value(&full_ms)),
        ("serial_ms".to_string(), serde_json::to_value(&serial_ms)),
        (
            "parallel_ms".to_string(),
            serde_json::to_value(&parallel_ms),
        ),
        ("speedup".to_string(), serde_json::to_value(&speedup)),
        (
            "incremental_speedup".to_string(),
            serde_json::to_value(&(full_ms / serial_ms)),
        ),
        ("evals".to_string(), serde_json::to_value(&stats.evals)),
        (
            "cache_hits".to_string(),
            serde_json::to_value(&stats.cache_hits),
        ),
        (
            "cache_hit_rate".to_string(),
            serde_json::to_value(&stats.hit_rate()),
        ),
        (
            "subgraph_scorings_full".to_string(),
            serde_json::to_value(&full_stats.subgraph_scorings),
        ),
        (
            "subgraph_scorings_incremental".to_string(),
            serde_json::to_value(&serial_stats.subgraph_scorings),
        ),
        (
            "subgraph_scoring_reduction".to_string(),
            serde_json::to_value(&scoring_reduction),
        ),
        (
            "subgraph_hit_rate".to_string(),
            serde_json::to_value(&serial_stats.subgraph_hit_rate()),
        ),
        (
            "subgraph_reused".to_string(),
            serde_json::to_value(&serial_stats.subgraph_reused),
        ),
        ("deterministic".to_string(), serde_json::to_value(&true)),
    ];
    serde_json::Value::Object(doc)
}

fn full_suite() {
    println!("== micro-benchmarks (median per iteration) ==\n");

    bench("models/build_resnet50", cocco::graph::models::resnet50);
    bench("models/build_googlenet", cocco::graph::models::googlenet);

    {
        let model = cocco::graph::models::googlenet();
        let members: Vec<_> = model.node_ids().collect();
        let mapper = Mapper::default();
        bench("tiling/derive_scheme_googlenet_whole", || {
            derive_scheme(&model, &members, &mapper).unwrap()
        });
    }

    {
        let model = cocco::graph::models::resnet50();
        let members: Vec<_> = model.node_ids().take(12).collect();
        bench("evaluator/subgraph_stats_cold", || {
            // A fresh evaluator per iteration so the cache never warms.
            let eval = Evaluator::new(&model, AcceleratorConfig::default());
            eval.subgraph_stats(&members).unwrap()
        });
        let eval = Evaluator::new(&model, AcceleratorConfig::default());
        eval.subgraph_stats(&members).unwrap();
        bench("evaluator/subgraph_stats_cached", || {
            eval.subgraph_stats(&members).unwrap()
        });
        let partition = repair(&model, Partition::depth_groups(&model, 5), &|_| true);
        let subgraphs = partition.subgraphs();
        let buffer = BufferConfig::shared(2 << 20);
        bench("evaluator/eval_partition_depth5", || {
            eval.eval_partition(&subgraphs, &buffer, EvalOptions::default())
                .unwrap()
        });
    }

    {
        let model = cocco::graph::models::googlenet();
        let mut rng = StdRng::seed_from_u64(42);
        let assignments: Vec<Vec<u32>> = (0..32)
            .map(|_| (0..model.len()).map(|_| rng.gen_range(0..12)).collect())
            .collect();
        let mut i = 0;
        bench("repair/random_googlenet", || {
            let a = assignments[i % assignments.len()].clone();
            i += 1;
            repair(&model, Partition::from_assignment(a), &|m| m.len() <= 16)
        });
    }

    {
        let model = cocco::graph::models::googlenet();
        let eval = Evaluator::new(&model, AcceleratorConfig::default());
        bench("search/ga_500_samples_googlenet", || {
            let ctx = SearchContext::new(
                &model,
                &eval,
                BufferSpace::paper_shared(),
                Objective::paper_energy_capacity(),
                500,
            );
            CoccoGa::default()
                .with_population(50)
                .with_seed(1)
                .run(&ctx)
        });
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut smoke = false;
    let mut threads: u32 = 4;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--threads" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--threads needs a value");
                    std::process::exit(2);
                });
                threads = value.parse().unwrap_or_else(|e| {
                    eprintln!("bad --threads `{value}`: {e}");
                    std::process::exit(2);
                });
            }
            bad => {
                eprintln!("unknown argument `{bad}` (supported: --smoke, --threads <n>)");
                std::process::exit(2);
            }
        }
    }
    let threads = threads.max(1);

    if smoke {
        // CI smoke: exercise the incremental delta path, the parallel
        // batch path and the determinism invariant at the requested worker
        // count; skip the slow timing loops.
        engine_bench(true, threads);
        println!("\nsmoke OK");
        return;
    }

    full_suite();
    let doc = engine_bench(false, threads);
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    let text = serde_json::to_string_pretty(&doc).expect("summary serializes");
    match std::fs::write(&path, format!("{text}\n")) {
        Ok(()) => println!("\n(engine summary written to {})", path.display()),
        Err(e) => eprintln!("\n(could not write {}: {e})", path.display()),
    }
}
