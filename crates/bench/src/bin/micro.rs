//! Micro-benchmarks of the framework's hot paths: model construction, the
//! consumption-centric derivation, subgraph statistics (cold and cached),
//! partition repair, full partition evaluation and the evaluation engine's
//! serial-vs-parallel batch path.
//!
//! Timed with a small std-only harness (the offline toolchain has no
//! criterion): each case is warmed up, then sampled until ~0.25 s of
//! wall-clock or 50 samples, whichever comes first, reporting the median
//! and minimum per-iteration time.
//!
//! Modes:
//!
//! * `cargo run --release -p cocco-bench --bin micro` — the full suite,
//!   ending with the stepped-vs-monolithic parity check, the engine
//!   benchmark (the same seeded GA on `resnet50` through the
//!   full-evaluation reference, the incremental serial path and the
//!   incremental parallel path under both pool lifecycles), the
//!   interleaved-vs-sequential two-step comparison, the arena-vs-reference
//!   comparison (`--arena on|off` selects the arm the other benchmarks
//!   run under), a cache-capacity sweep, the key-build and pool-overhead
//!   micro-measurements, and a `BENCH_engine.json` summary at the
//!   repository root recording wall times, the subgraph-level hit rate,
//!   the incremental scoring reduction, key-build cost, evictions, the
//!   persistent-vs-scoped pool comparison, the arena arm's cached-batch
//!   wall time, scratch footprint and batch-latency percentiles against
//!   the reference arm's, the two-step arms' cross-candidate stats-cache
//!   hit rates, the telemetry arm's per-batch dispatch-latency
//!   percentiles (p50/p90/p99) and the facade's per-phase wall profile;
//! * `cargo run --release -p cocco-bench --bin micro -- --smoke
//!   [--threads <n>] [--pool scoped|persistent] [--chunk <n>|auto]` —
//!   the CI smoke mode: a
//!   scaled-down run of the same arms that asserts bit-identical results
//!   across {full, incremental} × {serial, scoped, persistent} and the
//!   {1, 2, 8} threads × {persistent, scoped} × {arena, reference}
//!   determinism matrix, the ≥30% subgraph-scoring reduction, zero
//!   hot-path allocations (per-probe keys and canonicalize fallbacks) on
//!   the arena path, the fault-injection matrix (seeded fault schedules ×
//!   threads × pool lifecycles: bit-identical completion or a structured
//!   error with salvage — never a hang, a stranded budget sample or a
//!   leaked temp file), stepped-vs-monolithic parity (driver loop +
//!   JSON-resume == `run()`), the interleaved two-step's strictly
//!   higher cross-candidate subgraph hit rate, telemetry's
//!   zero-perturbation guarantee (a live sink leaves the seeded GA
//!   bit-identical) and its bounded cost on the cached-score leaf (an L0
//!   hit and a shared-shard hit), at the requested worker count — plus
//!   the scale-out grid ({prefilter, L0, adaptive} on/off × thread
//!   counts, under the `--chunk` size): bit-identical everywhere, with
//!   the warm prefiltered arm dispatching strictly fewer pool jobs than
//!   it scores candidates.

use cocco::prelude::*;
use cocco::telemetry::Stopwatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Times `f`, printing `name: median (min) per iteration`.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up and batch-size calibration: aim for batches of >= 1 ms.
    let mut batch = 1u32;
    loop {
        let start = Stopwatch::start();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let budget = Duration::from_millis(250);
    let mut samples = Vec::new();
    let run_start = Stopwatch::start();
    while samples.len() < 50 && (run_start.elapsed() < budget || samples.len() < 5) {
        let start = Stopwatch::start();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(start.elapsed().as_secs_f64() / f64::from(batch));
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let min = samples[0];
    println!(
        "{name:<42} {:>12} (min {})",
        fmt_time(median),
        fmt_time(min)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// One timed GA run under an explicit engine configuration (optionally
/// with a live telemetry sink); returns wall time plus the outcome
/// fingerprint and engine statistics.
fn ga_run(
    model: &Graph,
    budget: u64,
    population: usize,
    engine: EngineConfig,
    telemetry: Option<&Telemetry>,
) -> (Duration, f64, Option<Genome>, EngineStats) {
    // A fresh evaluator per run so every arm starts with cold caches.
    let evaluator = Evaluator::new(model, AcceleratorConfig::default());
    let ctx = SearchContext::new(
        model,
        &evaluator,
        BufferSpace::paper_shared(),
        Objective::paper_energy_capacity(),
        budget,
    );
    let ctx = match telemetry {
        Some(t) => ctx.with_engine_telemetry(engine, t),
        None => ctx.with_engine(engine),
    };
    let ga = CoccoGa::default().with_population(population).with_seed(42);
    let start = Stopwatch::start();
    let outcome = ga.run(&ctx);
    (
        start.elapsed(),
        outcome.best_cost,
        outcome.best,
        ctx.engine().stats(),
    )
}

/// The engine benchmark: the same seeded GA on a ≥ 50-node model through
/// the full-path serial reference, the incremental serial path, and the
/// incremental parallel path under **both** pool lifecycles (persistent
/// and scoped) at `threads` workers. Asserts bit-identical results across
/// every arm (every host), a ≥ 30 % reduction in full subgraph scorings on
/// the incremental path, zero per-probe key allocations, and the ≥ 2×
/// batch-path speedup (hosts with ≥ 4 CPUs — a single-core container
/// cannot physically speed up, so there the number is informational).
/// `pool` selects which parallel arm the headline speedup is reported
/// against; `arena` selects which allocation arm every run uses (results
/// are bit-identical either way). Returns the JSON summary document.
fn engine_bench(
    smoke: bool,
    threads: u32,
    pool: PoolMode,
    arena: bool,
    chunk: ChunkSize,
) -> serde_json::Value {
    let arm = |config: EngineConfig| {
        let config = config.with_chunk(chunk);
        if arena {
            config
        } else {
            config.without_arena()
        }
    };
    let model = cocco::graph::models::resnet50();
    let (budget, population) = if smoke { (600, 50) } else { (3_000, 100) };
    let host_cpus = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    println!(
        "\n== engine: GA on {} ({} nodes), budget {budget}, population {population}, host CPUs {} ==\n",
        model.name(),
        model.len(),
        host_cpus(),
    );

    let (full_wall, full_cost, full_best, full_stats) = ga_run(
        &model,
        budget,
        population,
        arm(EngineConfig::serial().without_incremental()),
        None,
    );
    let (serial_wall, serial_cost, serial_best, serial_stats) = ga_run(
        &model,
        budget,
        population,
        arm(EngineConfig::serial()),
        None,
    );
    // Each pool arm is its own timed run, and each stamps the CPU count
    // it actually ran with — container CPU quotas can change between
    // arms, and a shared stamp would misattribute one arm's wall time to
    // the other's parallelism budget.
    let persistent_cpus = host_cpus();
    let (persistent_wall, persistent_cost, persistent_best, persistent_stats) = ga_run(
        &model,
        budget,
        population,
        arm(EngineConfig::with_threads(threads)),
        None,
    );
    let scoped_cpus = host_cpus();
    let (scoped_wall, scoped_cost, scoped_best, scoped_stats) = ga_run(
        &model,
        budget,
        population,
        arm(EngineConfig::with_threads(threads).with_pool(PoolMode::Scoped)),
        None,
    );
    // Telemetry arm: the same seeded parallel GA with a live sink.
    // Observation only — results must stay bit-identical — and the sink
    // yields the per-batch dispatch latency histogram for the summary.
    let telemetry = Telemetry::enabled();
    let (telemetry_wall, telemetry_cost, telemetry_best, _) = ga_run(
        &model,
        budget,
        population,
        arm(EngineConfig::with_threads(threads)),
        Some(&telemetry),
    );
    assert_eq!(
        serial_cost, telemetry_cost,
        "telemetry perturbed the engine: best costs differ with a live sink"
    );
    assert_eq!(
        serial_best, telemetry_best,
        "telemetry perturbed the engine: best genomes differ with a live sink"
    );
    let batch_latency = telemetry
        .snapshot()
        .histogram("engine.batch.latency_ns")
        .cloned()
        .expect("a GA run dispatches batches");

    assert_eq!(
        full_cost, serial_cost,
        "engine determinism violated: full and incremental best costs differ"
    );
    assert_eq!(
        full_best, serial_best,
        "engine determinism violated: full and incremental best genomes differ"
    );
    assert_eq!(
        serial_cost, persistent_cost,
        "engine determinism violated: serial and persistent-pool best costs differ"
    );
    assert_eq!(
        serial_best, persistent_best,
        "engine determinism violated: serial and persistent-pool best genomes differ"
    );
    assert_eq!(
        serial_cost, scoped_cost,
        "engine determinism violated: serial and scoped-pool best costs differ"
    );
    assert_eq!(
        serial_best, scoped_best,
        "engine determinism violated: serial and scoped-pool best genomes differ"
    );
    let stats = match pool {
        PoolMode::Persistent => persistent_stats,
        PoolMode::Scoped => scoped_stats,
    };
    assert!(stats.cache_hits > 0, "GA run never hit the eval cache");
    assert!(
        stats.subgraph_reused > 0,
        "GA offspring never reused a memoized subgraph term"
    );
    for (arm, arm_stats) in [
        ("incremental serial", &serial_stats),
        ("incremental persistent", &persistent_stats),
        ("incremental scoped", &scoped_stats),
    ] {
        assert_eq!(
            arm_stats.key_allocs, 0,
            "{arm}: the incremental path must build zero per-probe keys \
             ({} allocations recorded)",
            arm_stats.key_allocs,
        );
        assert_eq!(
            arm_stats.stats_canonicalize_fallbacks, 0,
            "{arm}: engine-fed member lists must already be sorted \
             ({} canonicalize fallbacks recorded)",
            arm_stats.stats_canonicalize_fallbacks,
        );
        assert_eq!(
            arm_stats.hot_allocs, 0,
            "{arm}: the warmed scoring hot path must stay allocation-free \
             ({} instrumented allocations recorded)",
            arm_stats.hot_allocs,
        );
    }
    let scoring_reduction =
        1.0 - serial_stats.subgraph_scorings as f64 / full_stats.subgraph_scorings.max(1) as f64;
    assert!(
        scoring_reduction >= 0.30,
        "incremental path must avoid >= 30% of full subgraph scorings \
         (full {} vs incremental {}, reduction {:.0}%)",
        full_stats.subgraph_scorings,
        serial_stats.subgraph_scorings,
        scoring_reduction * 100.0,
    );

    let full_ms = full_wall.as_secs_f64() * 1e3;
    let serial_ms = serial_wall.as_secs_f64() * 1e3;
    let persistent_ms = persistent_wall.as_secs_f64() * 1e3;
    let scoped_ms = scoped_wall.as_secs_f64() * 1e3;
    // The headline speedup reports the selected pool arm's own run — the
    // summary below records both arms' measurements separately, never one
    // number under two names.
    let headline_ms = match pool {
        PoolMode::Persistent => persistent_ms,
        PoolMode::Scoped => scoped_ms,
    };
    let speedup = serial_ms / headline_ms;
    println!(
        "full path (1 thread) : {:>10}  ({} subgraph scorings)",
        fmt_time(full_wall.as_secs_f64()),
        full_stats.subgraph_scorings,
    );
    println!(
        "incremental (1 thr)  : {:>10}  ({} scorings, {} cached, {} reused)",
        fmt_time(serial_wall.as_secs_f64()),
        serial_stats.subgraph_scorings,
        serial_stats.subgraph_hits,
        serial_stats.subgraph_reused,
    );
    println!(
        "persistent ({threads} thr)   : {:>10}",
        fmt_time(persistent_wall.as_secs_f64())
    );
    println!(
        "scoped ({threads} thr)       : {:>10}",
        fmt_time(scoped_wall.as_secs_f64())
    );
    println!(
        "telemetry ({threads} thr)    : {:>10}  ({} batches, p50 {}, p99 {})",
        fmt_time(telemetry_wall.as_secs_f64()),
        batch_latency.count,
        fmt_time(batch_latency.p50() as f64 / 1e9),
        fmt_time(batch_latency.p99() as f64 / 1e9),
    );
    println!("speedup (threads)    : {speedup:.2}x ({pool:?} pool)");
    println!(
        "scoring reduction    : {:.0}% fewer full subgraph scorings",
        scoring_reduction * 100.0
    );
    println!(
        "subgraph hit rate    : {:.0}%",
        serial_stats.subgraph_hit_rate() * 100.0
    );
    println!(
        "cache                : {} evals, {} hits ({:.0}%), {} roll-ups + {} terms, {} evicted",
        stats.evals,
        stats.cache_hits,
        stats.hit_rate() * 100.0,
        stats.cache_entries,
        stats.subgraph_entries,
        stats.evictions(),
    );
    println!(
        "results              : bit-identical full vs incremental vs persistent vs scoped ✓ \
         (0 per-probe key allocations)"
    );
    let cpus_now = host_cpus();
    if cpus_now >= 4 && !smoke {
        assert!(
            speedup >= 2.0,
            "batched path must be >= 2x faster than serial at {threads} threads \
             on a {cpus_now}-CPU host (measured {speedup:.2}x)"
        );
    } else if cpus_now < 2 {
        println!(
            "note                 : host has {cpus_now} CPU — {threads} workers timeslice one core, \
             so the speedup above measures overhead, not parallelism"
        );
    }

    let doc = vec![
        ("model".to_string(), serde_json::to_value(&model.name())),
        (
            "nodes".to_string(),
            serde_json::to_value(&(model.len() as u64)),
        ),
        ("budget".to_string(), serde_json::to_value(&budget)),
        (
            "population".to_string(),
            serde_json::to_value(&(population as u64)),
        ),
        (
            "threads".to_string(),
            serde_json::to_value(&u64::from(threads)),
        ),
        (
            "host_cpus".to_string(),
            serde_json::to_value(&(cpus_now as u64)),
        ),
        ("full_ms".to_string(), serde_json::to_value(&full_ms)),
        ("serial_ms".to_string(), serde_json::to_value(&serial_ms)),
        (
            "parallel_persistent".to_string(),
            serde_json::Value::Object(vec![
                ("wall_ms".to_string(), serde_json::to_value(&persistent_ms)),
                (
                    "host_cpus".to_string(),
                    serde_json::to_value(&(persistent_cpus as u64)),
                ),
                (
                    "speedup".to_string(),
                    serde_json::to_value(&(serial_ms / persistent_ms)),
                ),
            ]),
        ),
        (
            "parallel_scoped".to_string(),
            serde_json::Value::Object(vec![
                ("wall_ms".to_string(), serde_json::to_value(&scoped_ms)),
                (
                    "host_cpus".to_string(),
                    serde_json::to_value(&(scoped_cpus as u64)),
                ),
                (
                    "speedup".to_string(),
                    serde_json::to_value(&(serial_ms / scoped_ms)),
                ),
            ]),
        ),
        (
            "pool".to_string(),
            serde_json::to_value(&format!("{pool:?}").to_lowercase()),
        ),
        ("speedup".to_string(), serde_json::to_value(&speedup)),
        (
            "incremental_speedup".to_string(),
            serde_json::to_value(&(full_ms / serial_ms)),
        ),
        ("evals".to_string(), serde_json::to_value(&stats.evals)),
        (
            "cache_hits".to_string(),
            serde_json::to_value(&stats.cache_hits),
        ),
        (
            "cache_hit_rate".to_string(),
            serde_json::to_value(&stats.hit_rate()),
        ),
        (
            "subgraph_scorings_full".to_string(),
            serde_json::to_value(&full_stats.subgraph_scorings),
        ),
        (
            "subgraph_scorings_incremental".to_string(),
            serde_json::to_value(&serial_stats.subgraph_scorings),
        ),
        (
            "subgraph_scoring_reduction".to_string(),
            serde_json::to_value(&scoring_reduction),
        ),
        (
            "subgraph_hit_rate".to_string(),
            serde_json::to_value(&serial_stats.subgraph_hit_rate()),
        ),
        (
            "subgraph_reused".to_string(),
            serde_json::to_value(&serial_stats.subgraph_reused),
        ),
        (
            "key_allocs".to_string(),
            serde_json::to_value(&serial_stats.key_allocs),
        ),
        (
            "hot_allocs".to_string(),
            serde_json::to_value(&serial_stats.hot_allocs),
        ),
        (
            "cache_evictions".to_string(),
            serde_json::to_value(&stats.evictions()),
        ),
        (
            "telemetry_ms".to_string(),
            serde_json::to_value(&(telemetry_wall.as_secs_f64() * 1e3)),
        ),
        (
            "batch_latency".to_string(),
            serde_json::Value::Object(vec![
                (
                    "count".to_string(),
                    serde_json::to_value(&batch_latency.count),
                ),
                (
                    "p50_ns".to_string(),
                    serde_json::to_value(&batch_latency.p50()),
                ),
                (
                    "p90_ns".to_string(),
                    serde_json::to_value(&batch_latency.p90()),
                ),
                (
                    "p99_ns".to_string(),
                    serde_json::to_value(&batch_latency.p99()),
                ),
            ]),
        ),
        ("deterministic".to_string(), serde_json::to_value(&true)),
    ];
    serde_json::Value::Object(doc)
}

/// The warmed cached-batch latency distribution of one arena arm:
/// p50/p90/p99 nanoseconds per batch.
struct CachedBatch {
    p50: f64,
    p90: f64,
    p99: f64,
}

/// Measures the warmed cached-batch latency of one arena arm: a fixed
/// set of repaired resnet50 partitions scored through
/// `Engine::score_partition` until every roll-up is a cache hit, then
/// per-batch wall-time samples of re-scoring the whole batch (pure hits
/// — what a converged search population pays per generation). Both arms
/// run identical work in identical order, so the distributions differ
/// only by the reference arm's per-candidate member-list allocations.
fn cached_batch(arena: bool) -> CachedBatch {
    let model = cocco::graph::models::resnet50();
    let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
    let mut config = EngineConfig::serial();
    if !arena {
        config = config.without_arena();
    }
    let engine = cocco::engine::Engine::new(config);
    let buffer = BufferConfig::shared(2 << 20);
    let partitions: Vec<Partition> = (2..=9)
        .map(|depth| repair(&model, Partition::depth_groups(&model, depth), &|_| true))
        .collect();
    // Warm: every partition's roll-up lands in the cache, and the arena
    // arm's layout buffers reach their steady-state capacity.
    for _ in 0..8 {
        for partition in &partitions {
            engine.score_partition(&evaluator, partition, &buffer, EvalOptions::default(), None);
        }
    }
    let mut samples = Vec::with_capacity(256);
    for _ in 0..256 {
        let start = Stopwatch::start();
        for partition in &partitions {
            std::hint::black_box(engine.score_partition(
                &evaluator,
                partition,
                &buffer,
                EvalOptions::default(),
                None,
            ));
        }
        samples.push(start.elapsed().as_secs_f64() * 1e9);
    }
    samples.sort_by(f64::total_cmp);
    CachedBatch {
        p50: samples[samples.len() / 2],
        p90: samples[samples.len() * 9 / 10],
        p99: samples[samples.len() * 99 / 100],
    }
}

/// The arena-vs-reference comparison: the same seeded GA with the flat
/// layout arenas on (the default) and off (`without_arena`), plus the
/// warmed cached-batch microbench for both arms. Asserts bit-identical
/// results, the zero-allocation tripwire on the arena arm, and that the
/// arena arm's cached-batch wall time and batch-latency p50 are no worse
/// than the reference arm's. Returns the JSON summary section.
fn arena_bench(smoke: bool, threads: u32) -> serde_json::Value {
    let model = cocco::graph::models::resnet50();
    let (budget, population) = if smoke { (600, 50) } else { (3_000, 100) };
    println!(
        "\n== arena: GA on {} ({} nodes), budget {budget}, arena on vs off ==\n",
        model.name(),
        model.len()
    );
    // Arena arm: run with a live sink (for the latency histogram) and
    // keep the context alive long enough to pull the arena metrics.
    let run_arm = |arena: bool| {
        let mut config = EngineConfig::with_threads(threads);
        if !arena {
            config = config.without_arena();
        }
        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        let telemetry = Telemetry::enabled();
        let ctx = SearchContext::new(
            &model,
            &evaluator,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            budget,
        )
        .with_engine_telemetry(config, &telemetry);
        let ga = CoccoGa::default().with_population(population).with_seed(42);
        let start = Stopwatch::start();
        let outcome = ga.run(&ctx);
        let wall = start.elapsed();
        let metrics = ctx.engine().metrics();
        let latency = metrics
            .histogram("engine.batch.latency_ns")
            .cloned()
            .expect("a GA run dispatches batches");
        (wall, outcome.best_cost, outcome.best, metrics, latency)
    };
    let (arena_wall, arena_cost, arena_best, arena_metrics, arena_latency) = run_arm(true);
    let (ref_wall, ref_cost, ref_best, ref_metrics, ref_latency) = run_arm(false);
    assert_eq!(
        arena_cost, ref_cost,
        "arena determinism violated: arena and reference best costs differ"
    );
    assert_eq!(
        arena_best, ref_best,
        "arena determinism violated: arena and reference best genomes differ"
    );
    for (name, metrics) in [("arena", &arena_metrics), ("reference", &ref_metrics)] {
        assert_eq!(
            metrics.counter("engine.hot_allocs"),
            0,
            "{name} arm: the warmed scoring hot path must stay allocation-free"
        );
    }
    assert!(
        arena_metrics.counter("engine.arena.reuses") > 0,
        "the arena arm never reused a warmed layout buffer"
    );
    let arena_batch = cached_batch(true);
    let ref_batch = cached_batch(false);
    assert!(
        arena_batch.p50 <= ref_batch.p50,
        "arena regression: warmed cached-batch latency p50 {:.0} ns exceeds \
         the reference arm's {:.0} ns",
        arena_batch.p50,
        ref_batch.p50,
    );
    let arena_ms = arena_wall.as_secs_f64() * 1e3;
    let ref_ms = ref_wall.as_secs_f64() * 1e3;
    println!(
        "arena ({threads} thr)        : {:>10}  ({} B scratch, {} reuses, {} grows)",
        fmt_time(arena_wall.as_secs_f64()),
        arena_metrics.gauge("engine.arena.bytes"),
        arena_metrics.counter("engine.arena.reuses"),
        arena_metrics.counter("engine.arena.grows"),
    );
    println!(
        "reference ({threads} thr)    : {:>10}",
        fmt_time(ref_wall.as_secs_f64())
    );
    println!(
        "cached batch p50     : arena {:>10}   reference {:>10}",
        fmt_time(arena_batch.p50 / 1e9),
        fmt_time(ref_batch.p50 / 1e9),
    );
    println!(
        "ga batch p50 (noisy) : arena {:>10}   reference {:>10}",
        fmt_time(arena_latency.p50() as f64 / 1e9),
        fmt_time(ref_latency.p50() as f64 / 1e9),
    );
    println!("results              : bit-identical arena vs reference ✓ (0 hot-path allocations)");
    let latency_doc = |h: &cocco::telemetry::HistogramSnapshot| {
        serde_json::Value::Object(vec![
            ("count".to_string(), serde_json::to_value(&h.count)),
            ("p50_ns".to_string(), serde_json::to_value(&h.p50())),
            ("p90_ns".to_string(), serde_json::to_value(&h.p90())),
            ("p99_ns".to_string(), serde_json::to_value(&h.p99())),
        ])
    };
    serde_json::Value::Object(vec![
        ("arena_ms".to_string(), serde_json::to_value(&arena_ms)),
        ("reference_ms".to_string(), serde_json::to_value(&ref_ms)),
        (
            "hot_allocs".to_string(),
            serde_json::to_value(&arena_metrics.counter("engine.hot_allocs")),
        ),
        (
            "arena_bytes".to_string(),
            serde_json::to_value(&arena_metrics.gauge("engine.arena.bytes")),
        ),
        (
            "arena_reuses".to_string(),
            serde_json::to_value(&arena_metrics.counter("engine.arena.reuses")),
        ),
        (
            "arena_grows".to_string(),
            serde_json::to_value(&arena_metrics.counter("engine.arena.grows")),
        ),
        (
            "batch_latency_arena".to_string(),
            serde_json::Value::Object(vec![
                ("p50_ns".to_string(), serde_json::to_value(&arena_batch.p50)),
                ("p90_ns".to_string(), serde_json::to_value(&arena_batch.p90)),
                ("p99_ns".to_string(), serde_json::to_value(&arena_batch.p99)),
            ]),
        ),
        (
            "batch_latency_reference".to_string(),
            serde_json::Value::Object(vec![
                ("p50_ns".to_string(), serde_json::to_value(&ref_batch.p50)),
                ("p90_ns".to_string(), serde_json::to_value(&ref_batch.p90)),
                ("p99_ns".to_string(), serde_json::to_value(&ref_batch.p99)),
            ]),
        ),
        (
            "ga_batch_latency_arena".to_string(),
            latency_doc(&arena_latency),
        ),
        (
            "ga_batch_latency_reference".to_string(),
            latency_doc(&ref_latency),
        ),
        ("deterministic".to_string(), serde_json::to_value(&true)),
    ])
}

/// The determinism smoke matrix: the same seeded GA across {1, 2, 8}
/// worker threads × both pool lifecycles × both arena arms — every cell
/// must be bit-identical to the first, and the arena cells must record
/// zero hot-path allocations.
fn arena_matrix_check() {
    let model = cocco::graph::models::googlenet();
    let (budget, population) = (240, 24);
    let mut reference: Option<(f64, Option<Genome>)> = None;
    for threads in [1u32, 2, 8] {
        for pool in [PoolMode::Persistent, PoolMode::Scoped] {
            for arena in [true, false] {
                let mut config = EngineConfig::with_threads(threads).with_pool(pool);
                if !arena {
                    config = config.without_arena();
                }
                let (_, cost, best, stats) = ga_run(&model, budget, population, config, None);
                let cell = format!(
                    "{threads} threads, {pool:?} pool, {} arm",
                    if arena { "arena" } else { "reference" }
                );
                match &reference {
                    Some((ref_cost, ref_best)) => {
                        assert_eq!(
                            *ref_cost, cost,
                            "matrix determinism violated: cost ({cell})"
                        );
                        assert_eq!(
                            *ref_best, best,
                            "matrix determinism violated: genome ({cell})"
                        );
                    }
                    None => reference = Some((cost, best)),
                }
                if arena {
                    assert_eq!(
                        stats.hot_allocs, 0,
                        "{cell}: the warmed scoring hot path must stay allocation-free"
                    );
                    assert_eq!(
                        stats.key_allocs, 0,
                        "{cell}: cache probes must build zero per-probe keys"
                    );
                }
            }
        }
    }
    println!(
        "arena matrix         : bit-identical across {{1,2,8}} threads × \
         {{persistent,scoped}} × {{arena,reference}} ✓ (0 hot-path allocations)"
    );
}

/// The fault-injection matrix: seeded fault schedules × {1, n} workers ×
/// both pool lifecycles, driven through the facade with cache and
/// checkpoint files. Transparent schedules (save-path faults, evaluator
/// transients) must complete bit-identically to the fault-free baseline;
/// the worker-panic schedule must degrade to a structured error carrying
/// a salvaged best-so-far plus a resumable checkpoint; the
/// budget-revocation schedule must complete degraded with a conserved
/// trace. No cell may hang, abort the process, strand a budget sample,
/// or leak a `*.tmp.*` file.
fn fault_matrix_check(threads: u32) {
    let dir = std::env::temp_dir().join(format!("cocco-fault-matrix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("fault-matrix scratch dir");
    let model = cocco::graph::models::googlenet();
    let cells: Vec<(u32, PoolMode)> = [1, threads.max(2)]
        .iter()
        .flat_map(|&t| [(t, PoolMode::Persistent), (t, PoolMode::Scoped)])
        .collect();
    let explore = |t: u32, pool: PoolMode, faults: FaultPlan, tag: &str| {
        Cocco::new()
            .with_budget(300)
            .with_seed(5)
            .with_engine(EngineConfig::with_threads(t).with_pool(pool))
            .with_cache_file(dir.join(format!("{tag}.cache.json")))
            .with_checkpoint_file(dir.join(format!("{tag}.ckpt.json")))
            .with_checkpoint_every(1)
            .with_faults(faults)
            .explore(&model)
    };
    let baseline = explore(1, PoolMode::Persistent, FaultPlan::disabled(), "baseline")
        .expect("the fault-free baseline completes");

    // Transparent schedules: injected save failures retry, torn writes
    // get cleaned up, evaluator transients re-score. Fault draws happen
    // in the serial funding-order section, so an identically seeded plan
    // fires at the same points in every cell — and every cell must match
    // the fault-free baseline bit for bit.
    let io_rates = FaultRates::none()
        .with(FaultSite::SaveWrite, 0.3)
        .with(FaultSite::SaveTorn, 0.2);
    let eval_rates = FaultRates::none().with(FaultSite::EvalError, 0.2);
    for (schedule, rates) in [("io_faults", io_rates), ("eval_transients", eval_rates)] {
        for &(t, pool) in &cells {
            let cell = format!("{schedule}, {t} threads, {pool:?} pool");
            let tag = format!("{schedule}-{t}-{pool:?}").to_lowercase();
            let plan = FaultPlan::seeded(11, rates);
            let result = explore(t, pool, plan.clone(), &tag)
                .unwrap_or_else(|e| panic!("{cell}: transparent schedule failed: {e}"));
            assert_eq!(
                baseline.cost, result.cost,
                "fault matrix: cost drifted ({cell})"
            );
            assert_eq!(
                baseline.genome, result.genome,
                "fault matrix: genome drifted ({cell})"
            );
            assert_eq!(
                baseline.trace, result.trace,
                "fault matrix: trace drifted ({cell})"
            );
            assert_eq!(
                result.trace.len() as u64,
                result.samples,
                "fault matrix: stranded budget samples ({cell})"
            );
            if schedule == "eval_transients" {
                assert!(
                    plan.health().eval_rescores > 0,
                    "fault matrix: the eval-transient schedule never fired ({cell})"
                );
            }
        }
    }

    // Worker-panic schedule: a deterministic mid-run panic. Every cell
    // must return the same structured error with the same salvaged
    // best-so-far, keep its last periodic checkpoint, refund the
    // quarantined batch, and resume to completion once disarmed.
    let mut panic_reference: Option<(f64, u64)> = None;
    for &(t, pool) in &cells {
        let cell = format!("worker_panic, {t} threads, {pool:?} pool");
        let tag = format!("worker_panic-{t}-{pool:?}").to_lowercase();
        let ckpt = dir.join(format!("{tag}.ckpt.json"));
        let plan = FaultPlan::seeded(2, FaultRates::none().with(FaultSite::WorkerPanic, 0.002));
        // The injected panic is caught and quarantined by the engine, but
        // the default hook would still spew a backtrace into the CI log;
        // silence it for just this call, then restore so genuine
        // assertion failures stay loud.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = Cocco::new()
            .with_budget(2_000)
            .with_seed(9)
            .with_engine(EngineConfig::with_threads(t).with_pool(pool))
            .with_checkpoint_file(&ckpt)
            .with_checkpoint_every(1)
            .with_faults(plan.clone())
            .explore(&model);
        std::panic::set_hook(hook);
        let err = result.expect_err("an injected worker panic must surface as an error");
        let Error::WorkerPanic { salvage, .. } = err else {
            panic!("{cell}: expected WorkerPanic, got {err}");
        };
        let salvage = salvage.expect("generations before the fault leave a best-so-far");
        match &panic_reference {
            Some((cost, samples)) => {
                assert_eq!(
                    *cost, salvage.cost,
                    "fault matrix: salvage cost drifted ({cell})"
                );
                assert_eq!(
                    *samples, salvage.samples,
                    "fault matrix: salvage samples drifted ({cell})"
                );
            }
            None => panic_reference = Some((salvage.cost, salvage.samples)),
        }
        let health = plan.health();
        assert_eq!(
            health.quarantined_batches, 1,
            "fault matrix: the panicked batch must be quarantined ({cell})"
        );
        assert!(
            health.refunded_samples > 0,
            "fault matrix: quarantined funding must be refunded ({cell})"
        );
        assert!(
            ckpt.exists(),
            "fault matrix: aborted run lost its checkpoint ({cell})"
        );
        let resumed = Cocco::new()
            .with_budget(2_000)
            .with_seed(9)
            .with_engine(EngineConfig::with_threads(t).with_pool(pool))
            .with_checkpoint_file(&ckpt)
            .explore(&model)
            .unwrap_or_else(|e| panic!("{cell}: disarmed resume failed: {e}"));
        assert!(
            resumed.cost <= salvage.cost,
            "fault matrix: resume regressed past the salvage ({cell})"
        );
        assert_eq!(
            resumed.trace.len() as u64,
            resumed.samples,
            "fault matrix: stranded budget samples after resume ({cell})"
        );
        assert!(
            !ckpt.exists(),
            "fault matrix: completed resume left its checkpoint behind ({cell})"
        );
    }

    // Budget-revocation schedule: the run is cut short but completes
    // normally, degraded, with a conserved trace — identically in every
    // cell.
    let small = cocco::graph::models::diamond();
    let mut revoke_reference: Option<(f64, u64)> = None;
    for &(t, pool) in &cells {
        let cell = format!("budget_revoke, {t} threads, {pool:?} pool");
        let plan = FaultPlan::seeded(4, FaultRates::none().with(FaultSite::BudgetRevoke, 0.05));
        let result = Cocco::new()
            .with_budget(5_000)
            .with_seed(3)
            .with_engine(EngineConfig::with_threads(t).with_pool(pool))
            .with_faults(plan.clone())
            .explore(&small)
            .unwrap_or_else(|e| panic!("{cell}: revocation must degrade, not fail: {e}"));
        assert!(
            result.samples < 5_000,
            "fault matrix: revoked budget must cut the run short ({cell})"
        );
        assert_eq!(
            result.trace.len() as u64,
            result.samples,
            "fault matrix: stranded budget samples ({cell})"
        );
        assert!(
            result.is_degraded(),
            "fault matrix: revocation must degrade ({cell})"
        );
        assert_eq!(
            result.health.budget_revocations, 1,
            "fault matrix: the revocation must be accounted ({cell})"
        );
        match &revoke_reference {
            Some((cost, samples)) => {
                assert_eq!(
                    *cost, result.cost,
                    "fault matrix: revoked cost drifted ({cell})"
                );
                assert_eq!(
                    *samples, result.samples,
                    "fault matrix: revoked samples drifted ({cell})"
                );
            }
            None => revoke_reference = Some((result.cost, result.samples)),
        }
    }

    let stale: Vec<String> = std::fs::read_dir(&dir)
        .expect("fault-matrix scratch dir is readable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".tmp."))
        .collect();
    assert!(
        stale.is_empty(),
        "fault matrix leaked temp files: {stale:?}"
    );
    // cocco-audit: allow(R2) scratch cleanup; every assertion above already passed
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "fault matrix         : {{io,eval,panic,revoke}} schedules × {{1,{}}} threads × \
         {{persistent,scoped}} ✓ (bit-identical or structured+salvaged, 0 stranded samples, \
         0 temp leaks)",
        threads.max(2)
    );
}

/// Measures bare pool batch overhead: the wall time of dispatching a
/// 64-job batch of trivial work through a `threads`-worker pool, scoped
/// spawn vs persistent workers. Returns the two medians in nanoseconds;
/// the persistent pool must not be slower — that is the whole point of
/// keeping the threads alive.
fn pool_overhead_bench(threads: u32) -> (f64, f64) {
    let mut medians = [0.0f64; 2];
    for (slot, mode) in [PoolMode::Scoped, PoolMode::Persistent]
        .into_iter()
        .enumerate()
    {
        let pool =
            cocco::engine::EnginePool::new(&EngineConfig::with_threads(threads).with_pool(mode));
        let sink = std::sync::atomic::AtomicU64::new(0);
        // Warm up (spawns the persistent workers).
        pool.run(64, |i| {
            sink.fetch_add(i as u64, std::sync::atomic::Ordering::Relaxed);
        });
        let mut samples: Vec<f64> = (0..200)
            .map(|_| {
                let start = Stopwatch::start();
                pool.run(64, |i| {
                    sink.fetch_add(i as u64, std::sync::atomic::Ordering::Relaxed);
                });
                start.elapsed().as_secs_f64() * 1e9
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        medians[slot] = samples[samples.len() / 2];
        std::hint::black_box(sink.load(std::sync::atomic::Ordering::Relaxed));
    }
    let (scoped_ns, persistent_ns) = (medians[0], medians[1]);
    println!(
        "engine/pool_batch_overhead_64jobs          scoped {:>10}   persistent {:>10}",
        fmt_time(scoped_ns / 1e9),
        fmt_time(persistent_ns / 1e9),
    );
    // The real gap is ~5-10x (thread spawn/join syscalls vs a channel
    // send), so require persistent to undercut scoped by at least 1.5x —
    // strictly below scoped as the acceptance criterion demands, with the
    // jitter headroom taken out of the large real margin rather than
    // granted on top of it.
    assert!(
        persistent_ns * 1.5 < scoped_ns,
        "persistent-pool batch overhead ({persistent_ns:.0} ns) must undercut \
         scoped-spawn overhead ({scoped_ns:.0} ns) by at least 1.5x"
    );
    (scoped_ns, persistent_ns)
}

/// Measures the per-evaluation key-build cost on the incremental path:
/// folding a resnet50 partition's precomputed subgraph fingerprints into a
/// partition-level `EvalKey` (what every cache probe pays per evaluation —
/// no allocation, no member walk). Returns the median in nanoseconds.
fn key_build_bench() -> f64 {
    let model = cocco::graph::models::resnet50();
    let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
    let partition = repair(&model, Partition::depth_groups(&model, 5), &|_| true);
    let fps = PartitionFingerprints::compute(&partition);
    let buffer = BufferConfig::shared(2 << 20);
    let fingerprint = evaluator.fingerprint();
    let mut samples = Vec::with_capacity(64);
    for _ in 0..64 {
        let start = Stopwatch::start();
        for _ in 0..4096 {
            std::hint::black_box(cocco::engine::EvalKey::partition(
                fingerprint,
                fps.positions().iter().copied(),
                &buffer,
                EvalOptions::default(),
            ));
        }
        samples.push(start.elapsed().as_secs_f64() * 1e9 / 4096.0);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    println!(
        "engine/eval_key_build_resnet50_depth5      {:>12} (zero allocations)",
        fmt_time(median / 1e9)
    );
    median
}

/// Cache-capacity sweep: the same seeded GA under shrinking entry budgets.
/// Results must stay bit-identical to the unbounded run; what changes is
/// eviction pressure (recorded per capacity).
fn capacity_sweep(threads: u32) -> serde_json::Value {
    let model = cocco::graph::models::resnet50();
    let (budget, population) = (1_500, 60);
    println!("\n== cache-capacity sweep: GA on resnet50, budget {budget} ==\n");
    let (_, reference_cost, reference_best, _) = ga_run(
        &model,
        budget,
        population,
        EngineConfig::with_threads(threads),
        None,
    );
    let mut rows = Vec::new();
    for capacity in [usize::MAX, 16_384, 2_048, 256] {
        let config = EngineConfig::with_threads(threads).with_cache_capacity(capacity);
        let (wall, cost, best, stats) = ga_run(&model, budget, population, config, None);
        assert_eq!(
            cost, reference_cost,
            "capacity {capacity}: eviction changed the best cost"
        );
        assert_eq!(
            best, reference_best,
            "capacity {capacity}: eviction changed the best genome"
        );
        let entries = stats.cache_entries + stats.subgraph_entries;
        if capacity != usize::MAX {
            assert!(
                entries <= capacity as u64,
                "capacity {capacity}: {entries} entries exceed the budget"
            );
        }
        println!(
            "capacity {:>10} : {:>10}  ({} entries, {} evicted, {:.0}% hits)",
            if capacity == usize::MAX {
                "unbounded".to_string()
            } else {
                capacity.to_string()
            },
            fmt_time(wall.as_secs_f64()),
            entries,
            stats.evictions(),
            stats.hit_rate() * 100.0,
        );
        rows.push(serde_json::Value::Object(vec![
            (
                "capacity".to_string(),
                serde_json::to_value(&(capacity.min(u64::MAX as usize) as u64)),
            ),
            (
                "wall_ms".to_string(),
                serde_json::to_value(&(wall.as_secs_f64() * 1e3)),
            ),
            ("entries".to_string(), serde_json::to_value(&entries)),
            (
                "evictions".to_string(),
                serde_json::to_value(&stats.evictions()),
            ),
        ]));
    }
    println!("results              : bit-identical across every capacity ✓");
    serde_json::Value::Array(rows)
}

/// The scale-out grid: the same seeded GA across {1, n} worker threads ×
/// every contention-free layer ({prefilter, L0, adaptive} on/off, plus
/// all-off), recording per cell the wall time, the number of jobs the
/// pool actually dispatched, the chunk/inline scheduling counters and
/// the worker-local L0 hit rate. Asserts bit-identical results (cost,
/// genome, trace) across every cell, that the warm prefiltered arm
/// dispatches **strictly fewer** pool jobs than it scores candidates,
/// and that its L0 caches absorb probes (`l0_hits > 0`). Returns the
/// JSON rows for the summary.
fn scaleout_bench(smoke: bool, threads: u32, chunk: ChunkSize) -> serde_json::Value {
    let model = cocco::graph::models::resnet50();
    let (budget, population) = if smoke { (600, 50) } else { (1_500, 60) };
    println!(
        "\n== scale-out: GA on {} ({} nodes), budget {budget}, {{prefilter,l0,adaptive}} grid ==\n",
        model.name(),
        model.len()
    );
    type Shape = fn(EngineConfig) -> EngineConfig;
    let arms: [(&str, Shape); 5] = [
        ("all-on", |c| c),
        ("no-prefilter", |c| c.without_prefilter()),
        ("no-l0", |c| c.without_l0()),
        ("no-adaptive", |c| c.with_parallel_threshold(0)),
        ("all-off", |c| {
            c.without_prefilter()
                .without_l0()
                .with_parallel_threshold(0)
        }),
    ];
    let run_cell = |t: u32, shape: Shape| {
        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &model,
            &evaluator,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            budget,
        )
        .with_engine(shape(EngineConfig::with_threads(t).with_chunk(chunk)));
        let ga = CoccoGa::default().with_population(population).with_seed(42);
        let start = Stopwatch::start();
        let outcome = ga.run(&ctx);
        let wall = start.elapsed();
        let metrics = ctx.engine().metrics();
        let stats = ctx.engine().stats();
        let trace = ctx.trace().points();
        (
            wall,
            outcome.best_cost,
            outcome.best,
            trace,
            metrics,
            stats,
            evaluator.stats_lock_waits(),
        )
    };
    let mut reference: Option<(f64, Option<Genome>, Vec<TracePoint>)> = None;
    let mut rows = Vec::new();
    for t in [1u32, threads.max(2)] {
        for (arm, shape) in arms {
            let (wall, cost, best, trace, metrics, stats, lock_waits) = run_cell(t, shape);
            let cell = format!("{arm}, {t} threads");
            match &reference {
                Some((ref_cost, ref_best, ref_trace)) => {
                    assert_eq!(
                        *ref_cost, cost,
                        "scale-out determinism violated: cost ({cell})"
                    );
                    assert_eq!(
                        *ref_best, best,
                        "scale-out determinism violated: genome ({cell})"
                    );
                    assert_eq!(
                        *ref_trace, trace,
                        "scale-out determinism violated: trace ({cell})"
                    );
                }
                None => reference = Some((cost, best, trace)),
            }
            let dispatched = metrics.counter("engine.pool.dispatched");
            let l0_hits = metrics.counter("engine.cache.l0_hits");
            let shared_hits = stats.cache_hits + stats.subgraph_hits;
            let l0_hit_rate = if shared_hits == 0 {
                0.0
            } else {
                l0_hits as f64 / shared_hits as f64
            };
            if arm == "all-on" {
                // The whole point of the prefilter: warmed candidates are
                // answered serially from the cache and never reach the
                // pool, so the dispatched-job count must undercut the
                // candidate count.
                assert!(
                    dispatched < stats.evals,
                    "{cell}: prefiltered dispatch must send strictly fewer jobs \
                     than candidates on a warm run ({dispatched} jobs vs {} candidates)",
                    stats.evals,
                );
                assert!(
                    l0_hits > 0,
                    "{cell}: the worker-local L0 caches never absorbed a probe"
                );
            }
            println!(
                "{arm:<12} ({t} thr) : {:>10}  ({dispatched}/{} jobs dispatched, \
                 {} chunks, {} inline, L0 {:.0}% of hits, {lock_waits} lock waits)",
                fmt_time(wall.as_secs_f64()),
                stats.evals,
                metrics.counter("engine.pool.chunks"),
                metrics.counter("engine.pool.inline_batches"),
                l0_hit_rate * 100.0,
            );
            rows.push(serde_json::Value::Object(vec![
                ("arm".to_string(), serde_json::to_value(&arm)),
                ("threads".to_string(), serde_json::to_value(&u64::from(t))),
                (
                    "wall_ms".to_string(),
                    serde_json::to_value(&(wall.as_secs_f64() * 1e3)),
                ),
                ("candidates".to_string(), serde_json::to_value(&stats.evals)),
                (
                    "dispatched_jobs".to_string(),
                    serde_json::to_value(&dispatched),
                ),
                (
                    "chunks".to_string(),
                    serde_json::to_value(&metrics.counter("engine.pool.chunks")),
                ),
                (
                    "inline_batches".to_string(),
                    serde_json::to_value(&metrics.counter("engine.pool.inline_batches")),
                ),
                ("l0_hits".to_string(), serde_json::to_value(&l0_hits)),
                (
                    "l0_publishes".to_string(),
                    serde_json::to_value(&metrics.counter("engine.cache.l0_publishes")),
                ),
                (
                    "l0_hit_rate".to_string(),
                    serde_json::to_value(&l0_hit_rate),
                ),
                (
                    "stats_lock_waits".to_string(),
                    serde_json::to_value(&lock_waits),
                ),
            ]));
        }
    }
    println!(
        "results              : bit-identical across {{1,{}}} threads × \
         {{prefilter,l0,adaptive}} on/off ✓ (warm dispatch < candidates)",
        threads.max(2)
    );
    serde_json::Value::Array(rows)
}

fn full_suite() {
    println!("== micro-benchmarks (median per iteration) ==\n");

    bench("models/build_resnet50", cocco::graph::models::resnet50);
    bench("models/build_googlenet", cocco::graph::models::googlenet);

    {
        let model = cocco::graph::models::googlenet();
        let members: Vec<_> = model.node_ids().collect();
        let mapper = Mapper::default();
        bench("tiling/derive_scheme_googlenet_whole", || {
            derive_scheme(&model, &members, &mapper).unwrap()
        });
    }

    {
        let model = cocco::graph::models::resnet50();
        let members: Vec<_> = model.node_ids().take(12).collect();
        bench("evaluator/subgraph_stats_cold", || {
            // A fresh evaluator per iteration so the cache never warms.
            let eval = Evaluator::new(&model, AcceleratorConfig::default());
            eval.subgraph_stats(&members).unwrap()
        });
        let eval = Evaluator::new(&model, AcceleratorConfig::default());
        eval.subgraph_stats(&members).unwrap();
        bench("evaluator/subgraph_stats_cached", || {
            eval.subgraph_stats(&members).unwrap()
        });
        let partition = repair(&model, Partition::depth_groups(&model, 5), &|_| true);
        let subgraphs = partition.subgraphs();
        let buffer = BufferConfig::shared(2 << 20);
        bench("evaluator/eval_partition_depth5", || {
            eval.eval_partition(&subgraphs, &buffer, EvalOptions::default())
                .unwrap()
        });
    }

    {
        let model = cocco::graph::models::googlenet();
        let mut rng = StdRng::seed_from_u64(42);
        let assignments: Vec<Vec<u32>> = (0..32)
            .map(|_| (0..model.len()).map(|_| rng.gen_range(0..12)).collect())
            .collect();
        let mut i = 0;
        bench("repair/random_googlenet", || {
            let a = assignments[i % assignments.len()].clone();
            i += 1;
            repair(&model, Partition::from_assignment(a), &|m| m.len() <= 16)
        });
    }

    {
        let model = cocco::graph::models::googlenet();
        let eval = Evaluator::new(&model, AcceleratorConfig::default());
        bench("search/ga_500_samples_googlenet", || {
            let ctx = SearchContext::new(
                &model,
                &eval,
                BufferSpace::paper_shared(),
                Objective::paper_energy_capacity(),
                500,
            );
            CoccoGa::default()
                .with_population(50)
                .with_seed(1)
                .run(&ctx)
        });
    }
}

/// Stepped-vs-monolithic parity: the same seeded GA through `run()` (now a
/// thin driver loop) and through an explicit step loop that round-trips the
/// whole `SearchSnapshot` through JSON at a mid step and resumes on a fresh
/// context. Asserts bit-identical best cost, genome and trace.
fn stepped_parity_check(threads: u32) {
    fn make_ctx<'a>(
        evaluator: &'a Evaluator<'a>,
        model: &'a Graph,
        threads: u32,
    ) -> SearchContext<'a> {
        SearchContext::new(
            model,
            evaluator,
            BufferSpace::paper_shared(),
            Objective::paper_energy_capacity(),
            400,
        )
        .with_engine(EngineConfig::with_threads(threads))
    }
    let model = cocco::graph::models::googlenet();
    let method = SearchMethod::ga().with_seed(23);
    let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
    let ctx = make_ctx(&evaluator, &model, threads);
    let monolithic = method.run(&ctx);
    let monolithic_trace = ctx.trace().points();

    // Stepped arm: drive 3 steps, snapshot through JSON, resume fresh.
    let snapshot = {
        let ctx = make_ctx(&evaluator, &model, threads);
        let mut driver = method.driver();
        for _ in 0..3 {
            match driver.next_batch(&ctx) {
                Step::Evaluate(mut batch) => {
                    ctx.evaluate_chunks(&mut batch);
                    driver.absorb(&ctx, batch);
                }
                Step::Continue => {}
                Step::Done => break,
            }
        }
        SearchSnapshot::capture(&method, &*driver, &ctx)
    };
    let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    let snapshot: SearchSnapshot = serde_json::from_str(&json).expect("snapshot deserializes");
    let ctx = make_ctx(&evaluator, &model, threads);
    snapshot.replay_into(&ctx);
    let mut driver = method
        .driver_from_state(&snapshot.driver)
        .expect("state matches method");
    let stepped = run_driver(&mut *driver, &ctx);
    assert_eq!(
        monolithic.best_cost, stepped.best_cost,
        "stepped-vs-monolithic parity violated: best cost"
    );
    assert_eq!(
        monolithic.best, stepped.best,
        "stepped-vs-monolithic parity violated: best genome"
    );
    assert_eq!(
        monolithic.samples, stepped.samples,
        "stepped-vs-monolithic parity violated: samples"
    );
    assert_eq!(
        monolithic_trace,
        ctx.trace().points(),
        "stepped-vs-monolithic parity violated: trace"
    );
    println!("stepped parity       : run() == stepped+JSON-resumed GA ✓ ({threads} threads)");
}

/// One timed two-step run (interleaved or sequential) with a fresh
/// evaluator, so the evaluator's per-subgraph stats cache measures only
/// this arm. Returns wall time, the outcome, the evaluator stats-cache hit
/// rate (the cross-candidate reuse channel: statistics are
/// buffer-independent, so elite partitions migrating between capacity
/// candidates hit it) and the engine stats.
fn twostep_run(
    model: &Graph,
    budget: u64,
    interleave: bool,
    threads: u32,
) -> (Duration, f64, f64, u64, EngineStats) {
    let evaluator = Evaluator::new(model, AcceleratorConfig::default());
    let ctx = SearchContext::new(
        model,
        &evaluator,
        BufferSpace::paper_shared(),
        Objective::paper_energy_capacity(),
        budget,
    )
    .with_engine(EngineConfig::with_threads(threads));
    // A small inner population: each capacity candidate runs several
    // generations within its slice, so elite migration has rounds to act
    // across (with one or two generations per candidate the two arms
    // barely differ).
    let ga = GaConfig {
        population: 24,
        ..GaConfig::default()
    };
    let mut method = TwoStep {
        sampling: CapacitySampling::Random,
        per_candidate: (budget / 4).max(1),
        ga,
        seed: 29,
        interleave: true,
    };
    if !interleave {
        method = method.sequential();
    }
    let start = Stopwatch::start();
    let outcome = method.run(&ctx);
    (
        start.elapsed(),
        outcome.best_cost,
        evaluator.stats_cache_hit_rate(),
        evaluator.stats_cache_misses(),
        ctx.engine().stats(),
    )
}

/// The interleaved-vs-sequential two-step comparison: same budget, same
/// candidate count, same seeds. The interleaved scheme batches all inner
/// GAs into shared engine dispatches and migrates elites across capacity
/// candidates, so its cross-candidate subgraph (stats-cache) hit rate must
/// be **strictly higher** than the sequential baseline's. Returns the JSON
/// summary fields.
fn twostep_bench(smoke: bool, threads: u32) -> serde_json::Value {
    let model = cocco::graph::models::resnet50();
    let budget = if smoke { 600 } else { 2_000 };
    let (seq_wall, seq_cost, seq_hit_rate, seq_misses, seq_stats) =
        twostep_run(&model, budget, false, threads);
    let (int_wall, int_cost, int_hit_rate, int_misses, int_stats) =
        twostep_run(&model, budget, true, threads);
    assert!(seq_cost.is_finite() && int_cost.is_finite());
    assert!(
        int_hit_rate > seq_hit_rate,
        "interleaved two-step must show a strictly higher cross-candidate subgraph hit rate \
         than the sequential baseline (interleaved {:.6} vs sequential {:.6})",
        int_hit_rate,
        seq_hit_rate,
    );
    assert!(
        int_misses <= seq_misses,
        "interleaved two-step must not derive more distinct subgraph statistics \
         ({int_misses} vs sequential {seq_misses})"
    );
    println!(
        "two-step sequential  : {:>10}  (stats-cache hit rate {:.2}%, {} derivations, cost {:.4e})",
        fmt_time(seq_wall.as_secs_f64()),
        seq_hit_rate * 100.0,
        seq_misses,
        seq_cost,
    );
    println!(
        "two-step interleaved : {:>10}  (stats-cache hit rate {:.2}%, {} derivations, cost {:.4e})",
        fmt_time(int_wall.as_secs_f64()),
        int_hit_rate * 100.0,
        int_misses,
        int_cost,
    );
    println!(
        "cross-candidate reuse: interleaved +{:.2} pp subgraph-stats hit rate, {} fewer \
         derivations than sequential ✓",
        (int_hit_rate - seq_hit_rate) * 100.0,
        seq_misses - int_misses,
    );
    serde_json::Value::Object(vec![
        ("budget".to_string(), serde_json::to_value(&budget)),
        (
            "sequential_ms".to_string(),
            serde_json::to_value(&(seq_wall.as_secs_f64() * 1e3)),
        ),
        (
            "interleaved_ms".to_string(),
            serde_json::to_value(&(int_wall.as_secs_f64() * 1e3)),
        ),
        (
            "sequential_cost".to_string(),
            serde_json::to_value(&seq_cost),
        ),
        (
            "interleaved_cost".to_string(),
            serde_json::to_value(&int_cost),
        ),
        (
            "sequential_stats_hit_rate".to_string(),
            serde_json::to_value(&seq_hit_rate),
        ),
        (
            "interleaved_stats_hit_rate".to_string(),
            serde_json::to_value(&int_hit_rate),
        ),
        (
            "sequential_stats_misses".to_string(),
            serde_json::to_value(&seq_misses),
        ),
        (
            "interleaved_stats_misses".to_string(),
            serde_json::to_value(&int_misses),
        ),
        (
            "sequential_engine_hit_rate".to_string(),
            serde_json::to_value(&seq_stats.hit_rate()),
        ),
        (
            "interleaved_engine_hit_rate".to_string(),
            serde_json::to_value(&int_stats.hit_rate()),
        ),
    ])
}

/// Bounds what telemetry may cost on the engine's hottest leaf: a warmed
/// `score_single` cache hit (tens of nanoseconds). Probes the same cached
/// subgraph 20 000 times through a disabled handle and through a live
/// sink — with the worker-local L0 cache answering the probe (the
/// default) and with L0 off so the probe falls through to the shared
/// shards. Every arm must stay under the same generous 5 µs/probe
/// ceiling, which catches a regression that puts a clock read, lock
/// round-trip or allocation onto the cached path. The cached leaf must
/// also stay silent: after every probe the live sink's event buffer is
/// still empty.
fn telemetry_overhead_check() {
    let model = cocco::graph::models::resnet50();
    let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
    let members: Vec<_> = model.node_ids().take(12).collect();
    let buffer = BufferConfig::shared(2 << 20);
    const PROBES: u32 = 20_000;
    const CEILING_NS: f64 = 5_000.0;
    println!();
    for (arm, telemetry, config) in [
        ("disabled", Telemetry::disabled(), EngineConfig::serial()),
        ("enabled", Telemetry::enabled(), EngineConfig::serial()),
        (
            "enabled-no-l0",
            Telemetry::enabled(),
            EngineConfig::serial().without_l0(),
        ),
    ] {
        let engine = cocco::engine::Engine::with_telemetry(config, telemetry.clone());
        // Warm the subgraph-term cache so every timed probe is a hit.
        engine.score_single(&evaluator, &members, &buffer, EvalOptions::default());
        let start = Stopwatch::start();
        for _ in 0..PROBES {
            std::hint::black_box(engine.score_single(
                &evaluator,
                &members,
                &buffer,
                EvalOptions::default(),
            ));
        }
        let per_probe_ns = start.elapsed().as_secs_f64() * 1e9 / f64::from(PROBES);
        assert!(
            per_probe_ns < CEILING_NS,
            "telemetry ({arm}): cached score_single probe costs {per_probe_ns:.0} ns — \
             something put a clock, lock or allocation on the cached leaf \
             (ceiling {CEILING_NS:.0} ns)"
        );
        assert!(
            telemetry.events().is_empty(),
            "telemetry ({arm}): the cached score_single leaf must emit no events"
        );
        // Prove the timed probes exercised the path the arm claims: with
        // L0 on, every post-warm probe is an L0 hit; with it off, none is.
        let l0_hits = engine.metrics().counter("engine.cache.l0_hits");
        if config.l0 {
            assert_eq!(
                l0_hits,
                u64::from(PROBES),
                "telemetry ({arm}): warmed probes must all be L0 hits"
            );
        } else {
            assert_eq!(
                l0_hits, 0,
                "telemetry ({arm}): the L0-off arm must never touch an L0 cache"
            );
        }
        println!(
            "telemetry/cached_leaf_{arm:<13}         {:>12} per probe (< {} ceiling)",
            fmt_time(per_probe_ns / 1e9),
            fmt_time(CEILING_NS / 1e9),
        );
    }
}

/// One seeded facade exploration with a live sink, reported as the
/// per-phase wall profile (setup / search / eval / cache / serialize).
/// Eval is nested inside search, so it can never exceed it. Returns the
/// phase snapshot as JSON for the summary.
fn phase_profile_bench(threads: u32) -> serde_json::Value {
    let model = cocco::graph::models::resnet50();
    let telemetry = Telemetry::enabled();
    Cocco::new()
        .with_method(SearchMethod::ga())
        .with_budget(1_500)
        .with_seed(7)
        .with_engine(EngineConfig::with_threads(threads))
        .with_telemetry(telemetry.clone())
        .explore(&model)
        .expect("exploration succeeds");
    let phases = telemetry.phases();
    println!("\n== phase profile: GA on resnet50, budget 1500, {threads} threads ==\n");
    for (name, ms) in phases.rows() {
        println!("phase/{name:<36} {:>12}", fmt_time(ms / 1e3));
    }
    assert!(
        phases.eval_ms <= phases.search_ms,
        "phase accounting violated: eval ({:.1} ms) is nested inside search ({:.1} ms)",
        phases.eval_ms,
        phases.search_ms,
    );
    serde_json::to_value(&phases)
}

/// Runs the workspace determinism audit in-process and prints its wall
/// time — the smoke's cheap proof that the gate stays both green and
/// fast enough to run on every CI push.
fn audit_gate_check() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let start = Stopwatch::start();
    let report = cocco_audit::audit_workspace(&root).expect("workspace audit runs");
    let wall_ms = start.elapsed_ms();
    assert!(
        report.is_clean(),
        "workspace audit found violations:\n{}",
        report.render_human()
    );
    println!(
        "\naudit gate: clean ({} files scanned, {} suppressed, {} path-allowed) in {wall_ms:.1} ms",
        report.files_scanned, report.suppressed, report.allowed
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut smoke = false;
    let mut threads: u32 = 4;
    let mut pool = PoolMode::Persistent;
    let mut arena = true;
    let mut chunk = ChunkSize::Auto;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--chunk" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--chunk needs a value (<n> | auto)");
                    std::process::exit(2);
                });
                chunk = match value.as_str() {
                    "auto" => ChunkSize::Auto,
                    n => ChunkSize::Fixed(n.parse().unwrap_or_else(|e| {
                        eprintln!("bad --chunk `{n}`: {e} (<n> | auto)");
                        std::process::exit(2);
                    })),
                };
            }
            "--arena" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--arena needs a value (on | off)");
                    std::process::exit(2);
                });
                arena = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    bad => {
                        eprintln!("bad --arena `{bad}` (on | off)");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--threads needs a value");
                    std::process::exit(2);
                });
                threads = value.parse().unwrap_or_else(|e| {
                    eprintln!("bad --threads `{value}`: {e}");
                    std::process::exit(2);
                });
            }
            "--pool" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--pool needs a value (scoped | persistent)");
                    std::process::exit(2);
                });
                pool = match value.as_str() {
                    "scoped" => PoolMode::Scoped,
                    "persistent" => PoolMode::Persistent,
                    bad => {
                        eprintln!("bad --pool `{bad}` (scoped | persistent)");
                        std::process::exit(2);
                    }
                };
            }
            bad => {
                eprintln!(
                    "unknown argument `{bad}` \
                     (supported: --smoke, --threads <n>, --pool scoped|persistent, \
                      --arena on|off, --chunk <n>|auto)"
                );
                std::process::exit(2);
            }
        }
    }
    let threads = threads.max(1);

    if smoke {
        // CI smoke: exercise the incremental delta path, both pool
        // lifecycles, the zero-key-allocation invariant, the determinism
        // invariant, the fault-injection matrix, stepped-vs-monolithic
        // parity (driver + JSON-resume) and the interleaved-vs-sequential
        // two-step arm at the requested worker count; skip the slow
        // timing loops.
        engine_bench(true, threads, pool, arena, chunk);
        arena_bench(true, threads);
        scaleout_bench(true, threads, chunk);
        println!();
        arena_matrix_check();
        fault_matrix_check(threads);
        stepped_parity_check(threads);
        twostep_bench(true, threads);
        telemetry_overhead_check();
        audit_gate_check();
        println!("\nsmoke OK");
        return;
    }

    full_suite();
    println!();
    stepped_parity_check(threads);
    let key_build_ns = key_build_bench();
    let (scoped_overhead_ns, persistent_overhead_ns) = pool_overhead_bench(threads);
    let mut doc = match engine_bench(false, threads, pool, arena, chunk) {
        serde_json::Value::Object(fields) => fields,
        _ => unreachable!("engine_bench returns an object"),
    };
    doc.push(("arena".to_string(), arena_bench(false, threads)));
    doc.push((
        "scaleout".to_string(),
        scaleout_bench(false, threads, chunk),
    ));
    doc.push(("twostep".to_string(), twostep_bench(false, threads)));
    doc.push((
        "key_build_ns".to_string(),
        serde_json::to_value(&key_build_ns),
    ));
    doc.push((
        "pool_batch_overhead_scoped_ns".to_string(),
        serde_json::to_value(&scoped_overhead_ns),
    ));
    doc.push((
        "pool_batch_overhead_persistent_ns".to_string(),
        serde_json::to_value(&persistent_overhead_ns),
    ));
    doc.push(("capacity_sweep".to_string(), capacity_sweep(threads)));
    doc.push(("phases".to_string(), phase_profile_bench(threads)));
    telemetry_overhead_check();
    let doc = serde_json::Value::Object(doc);
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    let text = serde_json::to_string_pretty(&doc).expect("summary serializes");
    match std::fs::write(&path, format!("{text}\n")) {
        Ok(()) => println!("\n(engine summary written to {})", path.display()),
        Err(e) => eprintln!("\n(could not write {}: {e})", path.display()),
    }
}
