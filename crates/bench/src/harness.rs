//! Shared utilities for the experiment targets: budget scaling, table
//! rendering and CSV output.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;

/// Sample budgets for the experiments, honouring `COCCO_FULL=1` (paper
/// scale) and `COCCO_SCALE=<divisor>` (divide paper budgets by a custom
/// factor).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Samples for partition-only searches (paper: 400 000).
    pub partition_samples: u64,
    /// Samples for co-exploration searches (paper: 50 000).
    pub coopt_samples: u64,
    /// GA population (paper Figure 13 uses 500 genomes).
    pub population: usize,
}

impl Scale {
    /// Reads the scale from the environment.
    ///
    /// * `COCCO_FULL=1` — paper budgets (400 k / 50 k, population 500);
    /// * `COCCO_SCALE=n` — paper budgets divided by `n`;
    /// * default — paper budgets divided by 25 (16 k / 2 k), which keeps
    ///   `cargo bench` under a few minutes while preserving every shape.
    pub fn from_env() -> Self {
        let full = std::env::var("COCCO_FULL").is_ok_and(|v| v == "1");
        let divisor: u64 = if full {
            1
        } else {
            std::env::var("COCCO_SCALE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(25)
                .max(1)
        };
        Self {
            partition_samples: (400_000 / divisor).max(1_000),
            coopt_samples: (50_000 / divisor).max(1_000),
            population: if divisor == 1 { 500 } else { 100 },
        }
    }
}

/// A simple fixed-width table that mirrors the paper's rows and also lands
/// in `target/cocco-results/<name>.csv`.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given CSV base name and column headers.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to stdout and writes the CSV file.
    pub fn emit(&self) {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (w, c) in widths.iter().zip(&self.columns) {
            let _ = write!(out, "{c:>w$}  ");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(out, "{cell:>w$}  ");
            }
            let _ = writeln!(out);
        }
        println!("{out}");
        self.write_csv();
    }

    fn write_csv(&self) {
        let dir = results_dir();
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("{}.csv", self.name));
        let Ok(mut f) = std::fs::File::create(&path) else {
            return;
        };
        let _ = writeln!(f, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(f, "{}", row.join(","));
        }
        eprintln!("(csv written to {})", path.display());
    }
}

/// Where CSV results are collected.
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/cocco-results")
}

/// Formats a byte count as KB with the paper's convention.
pub fn kb(bytes: u64) -> String {
    format!("{}KB", bytes >> 10)
}

/// Formats a cost like the paper's tables (e.g. `1.04E7`).
pub fn sci(v: f64) -> String {
    if !v.is_finite() {
        return "inf".into();
    }
    let exp = v.abs().log10().floor() as i32;
    let mant = v / 10f64.powi(exp);
    format!("{mant:.2}E{exp}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_divided() {
        // Cannot assume env vars here; construct directly.
        let s = Scale {
            partition_samples: 16_000,
            coopt_samples: 2_000,
            population: 100,
        };
        assert!(s.partition_samples > s.coopt_samples);
    }

    #[test]
    fn sci_matches_paper_style() {
        assert_eq!(sci(1.04e7), "1.04E7");
        assert_eq!(sci(3.75e6), "3.75E6");
        assert_eq!(sci(f64::INFINITY), "inf");
    }

    #[test]
    fn kb_formatting() {
        assert_eq!(kb(1 << 20), "1024KB");
        assert_eq!(kb(704 << 10), "704KB");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["x".into()]);
    }
}
