//! Shared method drivers for the co-exploration experiments (Tables 1-3,
//! Figures 12-14): fixed-HW, two-step and co-optimization schemes, all
//! following the paper's procedure — explore first, then run a
//! partition-only refinement at the chosen configuration to obtain the
//! final cost (§5.3.1).

use cocco::prelude::*;

/// One experiment setting shared by every method of a table row.
#[derive(Clone, Copy)]
pub struct ExperimentCfg<'a> {
    /// The workload.
    pub model: &'a Graph,
    /// Shared evaluator for the workload.
    pub evaluator: &'a Evaluator<'a>,
    /// Cost metric `M` (energy for Tables 1-3).
    pub metric: CostMetric,
    /// Formula-2 preference factor α.
    pub alpha: f64,
    /// Exploration sample budget per method.
    pub budget: u64,
    /// Refinement sample budget (partition-only, at the chosen config).
    pub refine_budget: u64,
    /// GA population.
    pub population: usize,
    /// Core/batch options.
    pub options: EvalOptions,
    /// Base RNG seed.
    pub seed: u64,
}

/// Result of one method on one workload.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// The chosen buffer configuration.
    pub buffer: BufferConfig,
    /// Final Formula-2 cost after refinement.
    pub cost: f64,
    /// The refined partition.
    pub partition: Option<Partition>,
    /// Exploration samples consumed.
    pub samples: u64,
}

/// Which co-optimization engine to use.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CoOptEngine {
    /// Simulated annealing (baseline).
    Sa,
    /// Cocco's genetic algorithm.
    Cocco,
}

impl ExperimentCfg<'_> {
    fn objective(&self) -> Objective {
        Objective::co_exploration(self.metric, self.alpha)
    }

    /// Runs the partition-only refinement at `buffer` (optionally warm-
    /// started) and returns the Formula-2 cost.
    fn refine(&self, buffer: BufferConfig, warm: Option<Partition>) -> MethodResult {
        let ctx = SearchContext::new(
            self.model,
            self.evaluator,
            BufferSpace::fixed(buffer),
            Objective::partition_only(self.metric),
            self.refine_budget,
        )
        .with_options(self.options);
        let mut ga = CoccoGa::default()
            .with_population(self.population)
            .with_seed(self.seed ^ 0x5eed);
        if let Some(p) = warm {
            ga = ga.with_initial(vec![p]);
        }
        let outcome = ga.run(&ctx);
        MethodResult {
            buffer,
            cost: buffer.total_bytes() as f64 + self.alpha * outcome.best_cost,
            partition: outcome.best.map(|g| g.partition),
            samples: outcome.samples,
        }
    }

    /// The fixed-HW scheme: partition-only search at a fixed buffer.
    pub fn fixed_hw(&self, buffer: BufferConfig) -> MethodResult {
        let ctx = SearchContext::new(
            self.model,
            self.evaluator,
            BufferSpace::fixed(buffer),
            Objective::partition_only(self.metric),
            self.budget,
        )
        .with_options(self.options);
        let outcome = CoccoGa::default()
            .with_population(self.population)
            .with_seed(self.seed)
            .run(&ctx);
        let mut refined = self.refine(buffer, outcome.best.map(|g| g.partition));
        refined.samples += outcome.samples;
        refined
    }

    /// A co-optimization scheme (SA or Cocco) over `space`.
    pub fn co_opt(&self, engine: CoOptEngine, space: BufferSpace) -> MethodResult {
        let ctx = SearchContext::new(
            self.model,
            self.evaluator,
            space,
            self.objective(),
            self.budget,
        )
        .with_options(self.options);
        let outcome = match engine {
            CoOptEngine::Sa => SimulatedAnnealing::default().with_seed(self.seed).run(&ctx),
            CoOptEngine::Cocco => CoccoGa::default()
                .with_population(self.population)
                .with_seed(self.seed)
                .run(&ctx),
        };
        match outcome.best {
            Some(genome) => {
                let mut refined = self.refine(genome.buffer, Some(genome.partition));
                refined.samples += outcome.samples;
                refined
            }
            None => MethodResult {
                buffer: space.grid()[0],
                cost: f64::INFINITY,
                partition: None,
                samples: outcome.samples,
            },
        }
    }

    /// A two-step scheme (RS+GA or GS+GA) over `space`.
    pub fn two_step(&self, sampling: CapacitySampling, space: BufferSpace) -> MethodResult {
        let ctx = SearchContext::new(
            self.model,
            self.evaluator,
            space,
            self.objective(),
            self.budget,
        )
        .with_options(self.options);
        let method = match sampling {
            CapacitySampling::Random => TwoStep::random(),
            CapacitySampling::Grid => TwoStep::grid(),
        }
        .with_per_candidate((self.budget / 10).max(1))
        .with_seed(self.seed);
        let outcome = method.run(&ctx);
        match outcome.best {
            Some(genome) => {
                let mut refined = self.refine(genome.buffer, Some(genome.partition));
                refined.samples += outcome.samples;
                refined
            }
            None => MethodResult {
                buffer: space.grid()[0],
                cost: f64::INFINITY,
                partition: None,
                samples: outcome.samples,
            },
        }
    }
}

/// Formats a buffer configuration like the paper's tables.
pub fn buffer_label(buffer: BufferConfig) -> (String, String) {
    match buffer {
        BufferConfig::Separate { glb, wgt } => {
            (format!("{}KB", glb >> 10), format!("{}KB", wgt >> 10))
        }
        BufferConfig::Shared { total } => (format!("{}KB", total >> 10), "-".to_string()),
    }
}

/// The paper's fixed configurations for Table 1 (separate) — S, M, L.
pub fn fixed_separate() -> [(&'static str, BufferConfig); 3] {
    [
        ("Buf(S)", BufferConfig::separate(512 << 10, 576 << 10)),
        ("Buf(M)", BufferConfig::separate(1024 << 10, 1152 << 10)),
        ("Buf(L)", BufferConfig::separate(2048 << 10, 2304 << 10)),
    ]
}

/// The paper's fixed configurations for Table 2 (shared) — S, M, L.
pub fn fixed_shared() -> [(&'static str, BufferConfig); 3] {
    [
        ("Buf(S)", BufferConfig::shared(576 << 10)),
        ("Buf(M)", BufferConfig::shared(1152 << 10)),
        ("Buf(L)", BufferConfig::shared(2304 << 10)),
    ]
}

/// The four workloads of Tables 1-3 and Figures 13-14.
pub const TABLE_MODELS: [&str; 4] = ["resnet50", "googlenet", "randwire-a", "nasnet"];
