//! The industrial-NPU survey of paper Figure 2.
//!
//! The paper surveys 16 commercial neural-network processors; the SRAM area
//! ratios are printed verbatim in the figure and reproduced here, together
//! with approximate on-chip capacity and peak-performance figures from the
//! cited venues (Hot Chips / ISSCC / ISCA talks), which drive the
//! performance-vs-capacity trend plot.

/// Whether an NPU targets training or inference (Figure 2 separates the
/// two trends).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum NpuDomain {
    /// Training-oriented parts.
    Training,
    /// Inference-oriented parts.
    Inference,
}

/// One surveyed NPU.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NpuSurveyEntry {
    /// Product name as printed in the paper.
    pub name: &'static str,
    /// SRAM share of die area, percent (paper Figure 2 right table).
    pub sram_area_pct: f64,
    /// On-chip memory capacity in MB (approximate, from the cited talks).
    pub capacity_mb: f64,
    /// Peak throughput in TFLOPS/TOPS as plotted (FP16-normalized).
    pub performance_tflops: f64,
    /// Training or inference design.
    pub domain: NpuDomain,
}

/// The 16 NPUs of paper Figure 2.
pub const NPU_SURVEY: [NpuSurveyEntry; 16] = [
    NpuSurveyEntry {
        name: "T4",
        sram_area_pct: 3.96,
        capacity_mb: 10.0,
        performance_tflops: 65.0,
        domain: NpuDomain::Inference,
    },
    NpuSurveyEntry {
        name: "NVDLA",
        sram_area_pct: 13.79,
        capacity_mb: 2.5,
        performance_tflops: 10.0,
        domain: NpuDomain::Inference,
    },
    NpuSurveyEntry {
        name: "TPUv4i",
        sram_area_pct: 14.70,
        capacity_mb: 144.0,
        performance_tflops: 138.0,
        domain: NpuDomain::Inference,
    },
    NpuSurveyEntry {
        name: "FSD",
        sram_area_pct: 20.10,
        capacity_mb: 64.0,
        performance_tflops: 36.0,
        domain: NpuDomain::Inference,
    },
    NpuSurveyEntry {
        name: "NNP-I",
        sram_area_pct: 27.46,
        capacity_mb: 75.0,
        performance_tflops: 48.0,
        domain: NpuDomain::Inference,
    },
    NpuSurveyEntry {
        name: "Groq",
        sram_area_pct: 32.39,
        capacity_mb: 220.0,
        performance_tflops: 205.0,
        domain: NpuDomain::Inference,
    },
    NpuSurveyEntry {
        name: "Hanguang",
        sram_area_pct: 36.86,
        capacity_mb: 394.0,
        performance_tflops: 256.0,
        domain: NpuDomain::Inference,
    },
    NpuSurveyEntry {
        name: "Ascend910",
        sram_area_pct: 8.60,
        capacity_mb: 32.0,
        performance_tflops: 256.0,
        domain: NpuDomain::Training,
    },
    NpuSurveyEntry {
        name: "TPUv2",
        sram_area_pct: 10.92,
        capacity_mb: 32.0,
        performance_tflops: 46.0,
        domain: NpuDomain::Training,
    },
    NpuSurveyEntry {
        name: "Qualcomm-100",
        sram_area_pct: 11.76,
        capacity_mb: 144.0,
        performance_tflops: 175.0,
        domain: NpuDomain::Training,
    },
    NpuSurveyEntry {
        name: "NNP-T",
        sram_area_pct: 18.60,
        capacity_mb: 60.0,
        performance_tflops: 108.0,
        domain: NpuDomain::Training,
    },
    NpuSurveyEntry {
        name: "Wormhole",
        sram_area_pct: 18.68,
        capacity_mb: 120.0,
        performance_tflops: 82.0,
        domain: NpuDomain::Training,
    },
    NpuSurveyEntry {
        name: "Grayskull",
        sram_area_pct: 23.22,
        capacity_mb: 120.0,
        performance_tflops: 92.0,
        domain: NpuDomain::Training,
    },
    NpuSurveyEntry {
        name: "Dojo",
        sram_area_pct: 28.01,
        capacity_mb: 440.0,
        performance_tflops: 362.0,
        domain: NpuDomain::Training,
    },
    NpuSurveyEntry {
        name: "IPUv2",
        sram_area_pct: 40.65,
        capacity_mb: 896.0,
        performance_tflops: 250.0,
        domain: NpuDomain::Training,
    },
    NpuSurveyEntry {
        name: "IPUv1",
        sram_area_pct: 78.80,
        capacity_mb: 304.0,
        performance_tflops: 125.0,
        domain: NpuDomain::Training,
    },
];

/// Mean performance per MB of on-chip memory over the given entries; the
/// survey's "diminishing marginal benefit" shows as the small-capacity
/// parts extracting several times more TFLOPS per MB than the
/// large-capacity parts.
pub fn mean_perf_per_mb(entries: &[NpuSurveyEntry]) -> f64 {
    if entries.is_empty() {
        return 0.0;
    }
    entries
        .iter()
        .map(|e| e.performance_tflops / e.capacity_mb.max(1e-9))
        .sum::<f64>()
        / entries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_parts_nine_training_seven_inference() {
        assert_eq!(NPU_SURVEY.len(), 16);
        let training = NPU_SURVEY
            .iter()
            .filter(|e| e.domain == NpuDomain::Training)
            .count();
        assert_eq!(training, 9);
        assert_eq!(NPU_SURVEY.len() - training, 7);
    }

    #[test]
    fn area_ratio_range_matches_paper() {
        // "ranging from 4% to 79% of the area, with capacities from 2.5MB
        // to 896MB"
        let min = NPU_SURVEY
            .iter()
            .map(|e| e.sram_area_pct)
            .fold(f64::MAX, f64::min);
        let max = NPU_SURVEY
            .iter()
            .map(|e| e.sram_area_pct)
            .fold(f64::MIN, f64::max);
        assert!((3.9..4.1).contains(&min));
        assert!((78.7..78.9).contains(&max));
        let cap_min = NPU_SURVEY
            .iter()
            .map(|e| e.capacity_mb)
            .fold(f64::MAX, f64::min);
        let cap_max = NPU_SURVEY
            .iter()
            .map(|e| e.capacity_mb)
            .fold(f64::MIN, f64::max);
        assert_eq!(cap_min, 2.5);
        assert_eq!(cap_max, 896.0);
    }

    #[test]
    fn diminishing_marginal_benefit() {
        // Fig. 2's observation 2: the small-capacity half extracts far
        // more performance per MB than the large-capacity half.
        let mut sorted = NPU_SURVEY;
        sorted.sort_by(|a, b| a.capacity_mb.total_cmp(&b.capacity_mb));
        let small = mean_perf_per_mb(&sorted[..8]);
        let large = mean_perf_per_mb(&sorted[8..]);
        assert!(
            small > 2.0 * large,
            "small-capacity {small} TFLOPS/MB should dwarf large-capacity {large}"
        );
    }
}
