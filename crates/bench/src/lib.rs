//! Experiment harness regenerating every table and figure of the Cocco
//! paper's evaluation (§5).
//!
//! Each `benches/` target of this crate reproduces one artifact:
//!
//! | target | paper artifact |
//! |---|---|
//! | `fig2_survey` | Fig. 2 — industrial NPU survey |
//! | `fig3_fusion` | Fig. 3 — EMA/BW vs. fused-subgraph size |
//! | `fig5_scheme` | Fig. 5/6 — execution-scheme worked example |
//! | `fig11_partition` | Fig. 11 — partition quality vs baselines |
//! | `table1_separate` | Table 1 — co-exploration, separate buffers |
//! | `table2_shared` | Table 2 — co-exploration, shared buffer |
//! | `fig12_convergence` | Fig. 12 — convergence + sample efficiency |
//! | `fig13_distribution` | Fig. 13 — sample-distribution drift |
//! | `fig14_alpha` | Fig. 14 — α sensitivity |
//! | `table3_multicore` | Table 3 — cores × batch |
//!
//! The `micro` binary (`src/bin/micro.rs`) times the hot paths and runs
//! the engine's serial-vs-parallel comparison (writing `BENCH_engine.json`
//! at the repository root); CI exercises it with
//! `cargo run --release -p cocco-bench --bin micro -- --smoke`.
//!
//! Budgets are scaled down by default so `cargo bench` finishes quickly;
//! set `COCCO_FULL=1` for paper-scale budgets (400 k partition samples,
//! 50 k co-exploration samples). Every run prints the same rows/series the
//! paper reports and appends CSV files under `target/cocco-results/`.

pub mod harness;
pub mod methods;
pub mod survey;

pub use harness::{Scale, Table};
