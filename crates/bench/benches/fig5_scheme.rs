//! Figures 5 and 6 — the worked execution-scheme example: derive Δ, x and
//! upd_num for the paper's five-node subgraph and replay two elementary
//! operations' memory snapshots.
//!
//! Run with: `cargo bench -p cocco-bench --bench fig5_scheme`

use cocco::graph::{Dims2, GraphBuilder, Kernel, LayerOp, TensorShape};
use cocco::mem::snapshot::replay;
use cocco::prelude::*;
use cocco_bench::Table;

fn main() {
    println!("== Figure 5: execution-scheme derivation ==\n");
    // The paper's 1-D example: inputs (-2), (-1); node(0) F3/s2 from (-2);
    // node(1) F3/s1 from both; node(2) F1/s1 from (-1). Node(1) is split
    // into two single-producer convs joined by a point-wise sum.
    let conv1d = |f: u32, s: u32, p: u32| LayerOp::Conv {
        kernel: Kernel::new(Dims2::new(f, 1), Dims2::new(s, 1), Dims2::new(p, 0)),
        c_out: 1,
    };
    let mut b = GraphBuilder::new("fig5");
    let in2 = b.input(TensorShape::new(64, 1, 1));
    let in1 = b.input(TensorShape::new(64, 1, 1));
    b.add("n0", conv1d(3, 2, 1), &[in2]).unwrap();
    let n1a = b.add("n1a", conv1d(3, 1, 1), &[in2]).unwrap();
    let n1b = b.add("n1b", conv1d(3, 1, 1), &[in1]).unwrap();
    b.eltwise("n1", &[n1a, n1b]).unwrap();
    b.add("n2", conv1d(1, 1, 0), &[in1]).unwrap();
    let g = b.finish().unwrap();

    let members: Vec<_> = g.node_ids().collect();
    let mapper = Mapper::new(MapperPolicy::Tile { rows: 2, cols: 1 });
    let scheme = derive_scheme(&g, &members, &mapper).unwrap();
    assert!(scheme.exact_upd(), "the example admits an exact solution");

    fn paper_name(name: &str) -> &str {
        match name {
            "input" => "node(-2)",
            "input1" => "node(-1)",
            "n0" => "node(0)",
            "n1a" => "node(1a)",
            "n1b" => "node(1b)",
            "n1" => "node(1)",
            "n2" => "node(2)",
            other => other,
        }
    }
    let mut table = Table::new("fig5_scheme", &["node", "delta", "x", "upd_num"]);
    for (id, s) in scheme.iter() {
        table.row(&[
            paper_name(g.node(id).name()).to_string(),
            s.delta.h.to_string(),
            s.tile.h.to_string(),
            s.upd_num.h.to_string(),
        ]);
    }
    table.emit();
    println!(
        "paper values: Δ(-2)=4, x(-2)=6, Δ(-1)=2, x(-1)=4, Δ=x=2 elsewhere,\n\
         co-prime upd_num = {{1, 2, 1, 2, 2}}.\n"
    );

    println!("== Figure 6: memory snapshots of two elementary operations ==\n");
    for snap in replay(&g, &scheme, 2) {
        println!("elementary operation {}:", snap.op);
        for u in &snap.updates {
            println!(
                "  {:<9} update {}: rows [{}:{}]",
                paper_name(g.node(u.node).name()),
                u.update,
                u.from,
                u.to
            );
        }
    }
    println!(
        "\npaper snapshot: node(-2) holds [0:5] then [4:9]; node(-1) performs\n\
         two updates per operation ([0:3],[2:5] then [4:7],[6:9])."
    );
}
