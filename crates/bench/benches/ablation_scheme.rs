//! Ablation — consumption-centric vs production-centric execution (the
//! §3.1 design choice, generalizing Figure 4 beyond the worked example):
//! how much *extra* data the production-centric scheme caches across the
//! paper workloads, relative to what the consumption-centric scheme keeps.
//!
//! Run with: `cargo bench -p cocco-bench --bench ablation_scheme`

use cocco::graph::Dims2;
use cocco::prelude::*;
use cocco::tiling::production::derive_production;
use cocco_bench::Table;

fn main() {
    println!("== Ablation: production- vs consumption-centric buffering ==\n");
    let mut table = Table::new(
        "ablation_scheme",
        &[
            "model",
            "L",
            "consumption elems",
            "production elems",
            "production extra",
            "ratio",
            "stalled subgraphs",
        ],
    );
    for name in ["resnet50", "googlenet", "randwire-a", "nasnet"] {
        let model = cocco::graph::models::by_name(name).unwrap();
        for l in [3usize, 5] {
            let partition = Partition::connected_groups(&model, l);
            let mut consumption = 0u64;
            let mut production = 0u64;
            let mut extra = 0u64;
            let mut stalled = 0usize;
            for members in partition.subgraphs() {
                let scheme = derive_scheme(&model, &members, &Mapper::default()).unwrap();
                // Consumption-centric: channel-weighted resident tiles.
                consumption += scheme
                    .iter()
                    .map(|(id, s)| s.tile.area() * u64::from(model.node(id).out_shape().c))
                    .sum::<u64>();
                // Production-centric: feed the same boundary tile forward.
                let input_tile = scheme
                    .iter()
                    .filter(|(_, s)| s.boundary_input)
                    .map(|(_, s)| s.tile)
                    .fold(Dims2::new(4, 4), |acc, t| {
                        Dims2::new(acc.h.max(t.h), acc.w.max(t.w))
                    });
                let report = derive_production(&model, &members, input_tile).unwrap();
                production +=
                    report.total_buffered_with(|id| u64::from(model.node(id).out_shape().c));
                extra += report
                    .iter()
                    .map(|(id, n)| n.extra_elements() * u64::from(model.node(id).out_shape().c))
                    .sum::<u64>();
                // A starved join (zero produced rows at some member) means
                // the forward scheme is infeasible at this tile size and
                // would need an even larger input tile.
                if report.iter().any(|(_, n)| n.produced.area() == 0) {
                    stalled += 1;
                }
            }
            table.row(&[
                name.to_string(),
                l.to_string(),
                consumption.to_string(),
                production.to_string(),
                extra.to_string(),
                format!("{:.2}x", production as f64 / consumption.max(1) as f64),
                stalled.to_string(),
            ]);
        }
    }
    table.emit();
    println!(
        "design-choice evidence: the production-centric scheme buffers more\n\
         data on every workload (the Figure 4 'extra data' at scale), which\n\
         is why the framework drives execution from consumers."
    );
}
