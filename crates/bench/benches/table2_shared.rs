//! Table 2 — hardware-mapping co-exploration with one *shared* buffer
//! (energy-capacity objective, α = 0.002) on ResNet50 / GoogleNet /
//! RandWire / NasNet.
//!
//! Run with: `cargo bench -p cocco-bench --bench table2_shared`

use cocco::prelude::*;
use cocco_bench::harness::sci;
use cocco_bench::methods::{buffer_label, fixed_shared, CoOptEngine, ExperimentCfg, TABLE_MODELS};
use cocco_bench::{Scale, Table};

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Table 2: co-exploration, shared buffer ({} samples/method) ==\n",
        scale.coopt_samples
    );
    let mut table = Table::new(
        "table2_shared",
        &["model", "scheme", "method", "Size", "Cost"],
    );
    for name in TABLE_MODELS {
        let model = cocco::graph::models::by_name(name).unwrap();
        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        let cfg = ExperimentCfg {
            model: &model,
            evaluator: &evaluator,
            metric: CostMetric::Energy,
            alpha: 0.002,
            budget: scale.coopt_samples,
            refine_budget: scale.coopt_samples / 2,
            population: scale.population,
            options: EvalOptions::default(),
            seed: 0xC0CC0,
        };
        let space = BufferSpace::paper_shared();
        let mut emit = |scheme: &str, method: &str, r: cocco_bench::methods::MethodResult| {
            let (size, _) = buffer_label(r.buffer);
            table.row(&[
                name.to_string(),
                scheme.to_string(),
                method.to_string(),
                size,
                sci(r.cost),
            ]);
        };
        for (label, buffer) in fixed_shared() {
            emit("Fixed HW", label, cfg.fixed_hw(buffer));
        }
        emit(
            "Two-Step",
            "RS+GA",
            cfg.two_step(CapacitySampling::Random, space),
        );
        emit(
            "Two-Step",
            "GS+GA",
            cfg.two_step(CapacitySampling::Grid, space),
        );
        emit("Co-Opt", "SA", cfg.co_opt(CoOptEngine::Sa, space));
        emit("Co-Opt", "Cocco", cfg.co_opt(CoOptEngine::Cocco, space));
    }
    table.emit();
    println!(
        "paper shapes: shared-buffer costs undercut the separate design\n\
         (Table 1) for most models, and Cocco again leads per model."
    );
}
