//! Figure 13 — how the population's sample distribution drifts during
//! Cocco's optimization: energy vs total buffer size, grouped into ten
//! generation windows. The paper's observation: later groups move toward a
//! lower `α`-slope intercept and concentrate.
//!
//! Run with: `cargo bench -p cocco-bench --bench fig13_distribution`

use cocco::prelude::*;
use cocco_bench::methods::TABLE_MODELS;
use cocco_bench::{Scale, Table};

const ALPHA: f64 = 0.002;

fn main() {
    let scale = Scale::from_env();
    let budget = scale.coopt_samples;
    println!("== Figure 13: sample distribution over {budget} samples ==\n");
    let mut table = Table::new(
        "fig13_distribution",
        &[
            "model",
            "group",
            "samples",
            "mean buffer MB",
            "mean energy mJ",
            "mean intercept",
            "stddev intercept",
        ],
    );
    for name in TABLE_MODELS {
        let model = cocco::graph::models::by_name(name).unwrap();
        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        let ctx = SearchContext::new(
            &model,
            &evaluator,
            BufferSpace::paper_shared(),
            Objective::co_exploration(CostMetric::Energy, ALPHA),
            budget,
        );
        CoccoGa::default()
            .with_population(scale.population)
            .with_seed(13)
            .run(&ctx);
        let points = ctx.trace().points();
        let groups = 10usize;
        let per_group = points.len().div_ceil(groups).max(1);
        for (gi, chunk) in points.chunks(per_group).enumerate() {
            let finite: Vec<_> = chunk
                .iter()
                .filter(|p| p.metric_value.is_finite())
                .collect();
            if finite.is_empty() {
                continue;
            }
            let n = finite.len() as f64;
            let mean_buf =
                finite.iter().map(|p| p.buffer_bytes as f64).sum::<f64>() / n / (1 << 20) as f64;
            let mean_energy = finite.iter().map(|p| p.metric_value).sum::<f64>() / n / 1e9;
            // Intercept of the α-slope line through each point:
            // cost = buffer + α·energy (lower is better).
            let intercepts: Vec<f64> = finite
                .iter()
                .map(|p| p.buffer_bytes as f64 + ALPHA * p.metric_value)
                .collect();
            let mean_i = intercepts.iter().sum::<f64>() / n;
            let var = intercepts.iter().map(|i| (i - mean_i).powi(2)).sum::<f64>() / n;
            table.row(&[
                name.to_string(),
                format!("{}", gi + 1),
                finite.len().to_string(),
                format!("{mean_buf:.3}"),
                format!("{mean_energy:.3}"),
                format!("{mean_i:.3e}"),
                format!("{:.3e}", var.sqrt()),
            ]);
        }
    }
    table.emit();
    println!(
        "paper shapes: the mean intercept falls monotonically-ish across\n\
         groups and its spread shrinks — the population drifts toward the\n\
         low-cost frontier and concentrates."
    );
}
