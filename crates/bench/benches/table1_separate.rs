//! Table 1 — hardware-mapping co-exploration with *separate* activation and
//! weight buffers (energy-capacity objective, α = 0.002): fixed-HW
//! Buf(S/M/L), two-step RS+GA and GS+GA, and the co-optimizing SA and
//! Cocco, on ResNet50 / GoogleNet / RandWire / NasNet.
//!
//! Run with: `cargo bench -p cocco-bench --bench table1_separate`
//! (`COCCO_FULL=1` for the paper's 50 000-sample budgets)

use cocco::prelude::*;
use cocco_bench::harness::sci;
use cocco_bench::methods::{
    buffer_label, fixed_separate, CoOptEngine, ExperimentCfg, TABLE_MODELS,
};
use cocco_bench::{Scale, Table};

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Table 1: co-exploration, separate buffers ({} samples/method) ==\n",
        scale.coopt_samples
    );
    let mut table = Table::new(
        "table1_separate",
        &["model", "scheme", "method", "Size(A)", "Size(W)", "Cost"],
    );
    for name in TABLE_MODELS {
        let model = cocco::graph::models::by_name(name).unwrap();
        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        let cfg = ExperimentCfg {
            model: &model,
            evaluator: &evaluator,
            metric: CostMetric::Energy,
            alpha: 0.002,
            budget: scale.coopt_samples,
            refine_budget: scale.coopt_samples / 2,
            population: scale.population,
            options: EvalOptions::default(),
            seed: 0xC0CC0,
        };
        let space = BufferSpace::paper_separate();
        let mut emit = |scheme: &str, method: &str, r: cocco_bench::methods::MethodResult| {
            let (a, w) = buffer_label(r.buffer);
            table.row(&[
                name.to_string(),
                scheme.to_string(),
                method.to_string(),
                a,
                w,
                sci(r.cost),
            ]);
        };
        for (label, buffer) in fixed_separate() {
            emit("Fixed HW", label, cfg.fixed_hw(buffer));
        }
        emit(
            "Two-Step",
            "RS+GA",
            cfg.two_step(CapacitySampling::Random, space),
        );
        emit(
            "Two-Step",
            "GS+GA",
            cfg.two_step(CapacitySampling::Grid, space),
        );
        emit("Co-Opt", "SA", cfg.co_opt(CoOptEngine::Sa, space));
        emit("Co-Opt", "Cocco", cfg.co_opt(CoOptEngine::Cocco, space));
    }
    table.emit();
    println!(
        "paper shapes: Cocco reaches the lowest (or tied-lowest) cost per\n\
         model; GoogleNet/RandWire prefer small capacities, NasNet large;\n\
         the two-step schemes trail the co-optimizers."
    );
}
