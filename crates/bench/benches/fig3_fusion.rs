//! Figure 3 — external memory access and average bandwidth requirement when
//! fusing L = 1, 3, 5 layers into subgraphs, on the 2 TOPS platform with a
//! 1 MB global buffer and a 1.125 MB weight buffer.
//!
//! Capacity constraints are relaxed here (as in the paper's motivating
//! figure) to isolate the effect of inter-layer reuse on communication.
//!
//! Run with: `cargo bench -p cocco-bench --bench fig3_fusion`

use cocco::prelude::*;
use cocco_bench::Table;

fn main() {
    println!("== Figure 3: layer-fusion effect (L = 1, 3, 5) ==\n");
    let buffer = BufferConfig::separate(1 << 20, 1152 << 10);
    let mut table = Table::new(
        "fig3_fusion",
        &[
            "model",
            "L",
            "EMA MB",
            "EMA vs L1",
            "avg BW GB/s",
            "BW vs L1",
        ],
    );
    for name in ["resnet50", "googlenet", "randwire-a", "nasnet"] {
        let model = cocco::graph::models::by_name(name).unwrap();
        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        let mut base: Option<(f64, f64)> = None;
        for l in [1usize, 3, 5] {
            // Capacity relaxed: the motivating figure isolates the effect
            // of inter-layer reuse on communication.
            let partition = Partition::connected_groups(&model, l);
            let report = evaluator
                .eval_partition(&partition.subgraphs(), &buffer, EvalOptions::default())
                .expect("evaluation");
            let ema_mb = report.ema_bytes as f64 / (1 << 20) as f64;
            let bw = report.avg_bw_gbps;
            let (ema0, bw0) = *base.get_or_insert((ema_mb, bw));
            table.row(&[
                name.to_string(),
                format!("{l}"),
                format!("{ema_mb:.1}"),
                format!("{:+.1}%", (ema_mb / ema0 - 1.0) * 100.0),
                format!("{bw:.2}"),
                format!("{:+.1}%", (bw / bw0 - 1.0) * 100.0),
            ]);
        }
    }
    table.emit();
    println!(
        "paper shapes: EMA drops 42-75% and BW 27-68% from L=1 to L=5, with\n\
         most of the benefit already captured at L=3 (diminishing returns)."
    );
}
