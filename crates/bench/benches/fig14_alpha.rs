//! Figure 14 — the α trade-off: larger α trades memory capacity for lower
//! energy. Energy is normalized to the α = 5e-4 result per model.
//!
//! Run with: `cargo bench -p cocco-bench --bench fig14_alpha`

use cocco::prelude::*;
use cocco_bench::methods::{CoOptEngine, ExperimentCfg, TABLE_MODELS};
use cocco_bench::{Scale, Table};

fn main() {
    let scale = Scale::from_env();
    println!("== Figure 14: energy vs capacity across alpha ==\n");
    let alphas = [5e-4, 1e-3, 2e-3, 5e-3, 1e-2];
    let mut table = Table::new(
        "fig14_alpha",
        &["model", "alpha", "capacity MB", "energy mJ", "energy norm"],
    );
    for name in TABLE_MODELS {
        let model = cocco::graph::models::by_name(name).unwrap();
        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        let mut base_energy: Option<f64> = None;
        for alpha in alphas {
            let cfg = ExperimentCfg {
                model: &model,
                evaluator: &evaluator,
                metric: CostMetric::Energy,
                alpha,
                budget: scale.coopt_samples,
                refine_budget: scale.coopt_samples / 2,
                population: scale.population,
                options: EvalOptions::default(),
                seed: 14,
            };
            let result = cfg.co_opt(CoOptEngine::Cocco, BufferSpace::paper_shared());
            // Recover the achieved energy from the final cost decomposition.
            let energy_pj = (result.cost - result.buffer.total_bytes() as f64) / alpha;
            let energy_mj = energy_pj / 1e9;
            let base = *base_energy.get_or_insert(energy_mj);
            table.row(&[
                name.to_string(),
                format!("{alpha:.0e}"),
                format!(
                    "{:.3}",
                    result.buffer.total_bytes() as f64 / (1 << 20) as f64
                ),
                format!("{energy_mj:.3}"),
                format!("{:.3}", energy_mj / base),
            ]);
        }
    }
    table.emit();
    println!(
        "paper shapes: capacity grows and energy falls with larger alpha;\n\
         NasNet needs the largest capacities for its energy gains."
    );
}
