//! Figure 12 — convergence and sample efficiency of the co-exploration
//! methods on ResNet50, GoogleNet and RandWire: best-cost-so-far curves
//! plus the 12(d) samples-to-reach-1.05×-Cocco table.
//!
//! Every method's trace is converted to the common Formula-2 cost
//! (`buffer + α·metric`) so fixed-HW, two-step and co-opt runs are
//! comparable point-for-point.
//!
//! Run with: `cargo bench -p cocco-bench --bench fig12_convergence`

use cocco::prelude::*;
use cocco_bench::harness::sci;
use cocco_bench::methods::fixed_shared;
use cocco_bench::{Scale, Table};

const ALPHA: f64 = 0.002;

/// Best-so-far Formula-2 curve of a context's trace, sampled at `points`
/// evenly spaced sample counts.
fn curve(ctx: &SearchContext<'_>, budget: u64, points: usize) -> Vec<(u64, f64)> {
    let mut best = f64::INFINITY;
    let mut full: Vec<(u64, f64)> = Vec::new();
    for p in ctx.trace().points() {
        if p.metric_value.is_finite() {
            let cost = p.buffer_bytes as f64 + ALPHA * p.metric_value;
            if cost < best {
                best = cost;
            }
        }
        full.push((p.sample, best));
    }
    (1..=points)
        .map(|i| {
            let at = budget * i as u64 / points as u64;
            let value = full
                .iter()
                .take_while(|(s, _)| *s < at)
                .map(|(_, c)| *c)
                .last()
                .unwrap_or(f64::INFINITY);
            (at, value)
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let budget = scale.coopt_samples;
    println!("== Figure 12: convergence over {budget} samples ==\n");
    let mut curves = Table::new("fig12_convergence", &["model", "method", "samples", "cost"]);
    let mut reach = Table::new(
        "fig12d_samples_to_reach",
        &["model", "method", "samples to 1.05x Cocco"],
    );

    for name in ["resnet50", "googlenet", "randwire-a"] {
        let model = cocco::graph::models::by_name(name).unwrap();
        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        let objective = Objective::co_exploration(CostMetric::Energy, ALPHA);
        let mut runs: Vec<(&str, SearchContext<'_>)> = Vec::new();

        // Fixed-HW schemes: partition-only GA at S/M/L shared buffers.
        for (label, buffer) in fixed_shared() {
            let ctx = SearchContext::new(
                &model,
                &evaluator,
                BufferSpace::fixed(buffer),
                Objective::partition_only(CostMetric::Energy),
                budget,
            );
            CoccoGa::default()
                .with_population(scale.population)
                .with_seed(1)
                .run(&ctx);
            runs.push((
                match label {
                    "Buf(S)" => "Buf(S)+GA",
                    "Buf(M)" => "Buf(M)+GA",
                    _ => "Buf(L)+GA",
                },
                ctx,
            ));
        }
        // Two-step schemes.
        for (label, method) in [("RS+GA", TwoStep::random()), ("GS+GA", TwoStep::grid())] {
            let ctx = SearchContext::new(
                &model,
                &evaluator,
                BufferSpace::paper_shared(),
                objective,
                budget,
            );
            method
                .with_per_candidate((budget / 10).max(1))
                .with_seed(2)
                .run(&ctx);
            runs.push((label, ctx));
        }
        // Co-optimization.
        {
            let ctx = SearchContext::new(
                &model,
                &evaluator,
                BufferSpace::paper_shared(),
                objective,
                budget,
            );
            SimulatedAnnealing::default().with_seed(3).run(&ctx);
            runs.push(("SA", ctx));
        }
        let cocco_ctx = SearchContext::new(
            &model,
            &evaluator,
            BufferSpace::paper_shared(),
            objective,
            budget,
        );
        CoccoGa::default()
            .with_population(scale.population)
            .with_seed(4)
            .run(&cocco_ctx);
        runs.push(("Cocco", cocco_ctx));

        // Emit curves and the 12(d) threshold table.
        let cocco_final = curve(&runs.last().unwrap().1, budget, 50)
            .last()
            .map(|(_, c)| *c)
            .unwrap_or(f64::INFINITY);
        let threshold = 1.05 * cocco_final;
        println!(
            "{name}: Cocco final cost {} (threshold {})",
            sci(cocco_final),
            sci(threshold)
        );
        for (method, ctx) in &runs {
            for (s, c) in curve(ctx, budget, 25) {
                curves.row(&[
                    name.to_string(),
                    method.to_string(),
                    s.to_string(),
                    if c.is_finite() {
                        format!("{c:.0}")
                    } else {
                        "inf".into()
                    },
                ]);
            }
            let reached = curve(ctx, budget, 200)
                .into_iter()
                .find(|(_, c)| *c <= threshold)
                .map(|(s, _)| s.to_string())
                .unwrap_or_else(|| "never".to_string());
            reach.row(&[name.to_string(), method.to_string(), reached]);
        }
    }
    curves.emit();
    println!("== Figure 12(d): required samples to attain 1.05x of Cocco's final cost ==\n");
    reach.emit();
    println!(
        "paper shapes: Cocco converges fastest and lowest; GS+GA is slow on\n\
         models whose optimum lies at small capacities (GoogleNet, RandWire)."
    );
}
