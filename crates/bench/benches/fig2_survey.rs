//! Figure 2 — survey of 16 industrial NPUs: SRAM area ratio table and the
//! performance-vs-capacity trend with its diminishing marginal benefit.
//!
//! Run with: `cargo bench -p cocco-bench --bench fig2_survey`

use cocco_bench::survey::{mean_perf_per_mb, NpuDomain, NPU_SURVEY};
use cocco_bench::Table;

fn main() {
    println!("== Figure 2: industrial NPU survey ==\n");
    let mut table = Table::new(
        "fig2_survey",
        &["NPU", "domain", "SRAM area %", "capacity MB", "perf TFLOPS"],
    );
    for e in NPU_SURVEY {
        table.row(&[
            e.name.to_string(),
            format!("{:?}", e.domain),
            format!("{:.2}", e.sram_area_pct),
            format!("{:.1}", e.capacity_mb),
            format!("{:.0}", e.performance_tflops),
        ]);
    }
    table.emit();

    // The trend observations the paper draws from the figure.
    let mut sorted = NPU_SURVEY;
    sorted.sort_by(|a, b| a.capacity_mb.total_cmp(&b.capacity_mb));
    let small = mean_perf_per_mb(&sorted[..8]);
    let large = mean_perf_per_mb(&sorted[8..]);
    println!("mean performance per MB, small-capacity half: {small:.2} TFLOPS/MB");
    println!("mean performance per MB, large-capacity half: {large:.2} TFLOPS/MB");
    println!("=> diminishing marginal benefit of memory capacity (observation 2)");

    let inference_max = NPU_SURVEY
        .iter()
        .filter(|e| e.domain == NpuDomain::Inference)
        .map(|e| e.capacity_mb)
        .fold(f64::MIN, f64::max);
    println!(
        "largest inference-part capacity: {inference_max:.0} MB (Hanguang's \
         SRAM-only design => a saturated capacity exists, observation 3)"
    );
}
