//! Table 3 — multi-core and batch evaluation under the energy-capacity
//! co-optimization: cores ∈ {1, 2, 4} × batch ∈ {1, 2, 8} for the four
//! table workloads; reports energy (mJ), latency (ms) and the chosen
//! per-core shared buffer size.
//!
//! Run with: `cargo bench -p cocco-bench --bench table3_multicore`

use cocco::prelude::*;
use cocco_bench::methods::{CoOptEngine, ExperimentCfg, TABLE_MODELS};
use cocco_bench::{Scale, Table};

fn main() {
    let scale = Scale::from_env();
    println!("== Table 3: cores x batch (energy-capacity co-opt) ==\n");
    let mut table = Table::new(
        "table3_multicore",
        &[
            "model",
            "cores",
            "batch",
            "energy mJ",
            "latency ms",
            "size KB",
        ],
    );
    for name in TABLE_MODELS {
        let model = cocco::graph::models::by_name(name).unwrap();
        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        for cores in [1u32, 2, 4] {
            for batch in [1u32, 2, 8] {
                let options = EvalOptions::new(cores, batch).expect("nonzero cores/batch");
                let cfg = ExperimentCfg {
                    model: &model,
                    evaluator: &evaluator,
                    metric: CostMetric::Energy,
                    alpha: 0.002,
                    budget: scale.coopt_samples / 2,
                    refine_budget: scale.coopt_samples / 4,
                    population: scale.population,
                    options,
                    seed: 3,
                };
                let result = cfg.co_opt(CoOptEngine::Cocco, BufferSpace::paper_shared());
                let (energy_mj, latency_ms) = match &result.partition {
                    Some(p) => {
                        let report = evaluator
                            .eval_partition(&p.subgraphs(), &result.buffer, options)
                            .expect("evaluation");
                        (report.energy_mj(), report.latency_ms(1.0))
                    }
                    None => (f64::NAN, f64::NAN),
                };
                table.row(&[
                    name.to_string(),
                    cores.to_string(),
                    batch.to_string(),
                    format!("{energy_mj:.2}"),
                    format!("{latency_ms:.2}"),
                    format!("{}", result.buffer.total_bytes() >> 10),
                ]);
            }
        }
    }
    table.emit();
    println!(
        "paper shapes: energy rises from 1 to 2 cores (crossbar weight\n\
         rotation) while latency drops ~linearly with cores; batch latency\n\
         and energy grow sub-linearly (weights amortized); per-core capacity\n\
         falls as cores share weights."
    );
}
