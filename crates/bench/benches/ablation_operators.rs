//! Ablation — contribution of each genetic operator (the §4.4 design
//! choices): run Cocco with crossover or individual mutations disabled and
//! compare final co-exploration costs under identical seeds and budgets.
//!
//! Run with: `cargo bench -p cocco-bench --bench ablation_operators`

use cocco::prelude::*;
use cocco::search::{GaConfig, MutationRates};
use cocco_bench::harness::sci;
use cocco_bench::{Scale, Table};

fn variant(name: &str, base: &GaConfig) -> (String, GaConfig) {
    let mut cfg = base.clone();
    match name {
        "full" => {}
        "no-crossover" => cfg.crossover_fraction = 0.0,
        "no-modify-node" => cfg.mutation.modify_node = 0.0,
        "no-split" => cfg.mutation.split_subgraph = 0.0,
        "no-merge" => cfg.mutation.merge_subgraph = 0.0,
        "no-dse" => cfg.mutation.dse = 0.0,
        "mutation-only" => {
            cfg.crossover_fraction = 0.0;
        }
        _ => unreachable!(),
    }
    (name.to_string(), cfg)
}

fn main() {
    let scale = Scale::from_env();
    let budget = scale.coopt_samples;
    println!("== Ablation: GA operators ({budget} samples, 3 seeds) ==\n");
    let base = GaConfig {
        population: scale.population,
        mutation: MutationRates::default(),
        ..GaConfig::default()
    };
    let mut table = Table::new(
        "ablation_operators",
        &["model", "variant", "mean cost", "worst cost"],
    );
    for name in ["googlenet", "randwire-a"] {
        let model = cocco::graph::models::by_name(name).unwrap();
        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        for v in [
            "full",
            "no-crossover",
            "no-modify-node",
            "no-split",
            "no-merge",
            "no-dse",
        ] {
            let (label, cfg) = variant(v, &base);
            let mut costs = Vec::new();
            for seed in [1u64, 2, 3] {
                let ctx = SearchContext::new(
                    &model,
                    &evaluator,
                    BufferSpace::paper_shared(),
                    Objective::paper_energy_capacity(),
                    budget,
                );
                let mut cfg = cfg.clone();
                cfg.seed = seed;
                let out = CoccoGa::new(cfg).run(&ctx);
                costs.push(out.best_cost);
            }
            let mean = costs.iter().sum::<f64>() / costs.len() as f64;
            let worst = costs.iter().cloned().fold(f64::MIN, f64::max);
            table.row(&[name.to_string(), label, sci(mean), sci(worst)]);
        }
    }
    table.emit();
    println!(
        "design-choice evidence: disabling crossover consistently degrades\n\
         the final cost (the paper's inheritance mechanism is the main\n\
         driver); individual mutations matter less at small budgets, where\n\
         the DSE mutation can even add noise — at paper-scale budgets it\n\
         pays for itself by escaping capacity plateaus."
    );
}
