//! Criterion micro-benchmarks of the framework's hot paths: model
//! construction, the consumption-centric derivation, subgraph statistics
//! (cold and cached), partition repair and full partition evaluation.
//!
//! Run with: `cargo bench -p cocco-bench --bench micro`

use cocco::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("models");
    g.sample_size(10);
    g.bench_function("build_resnet50", |b| {
        b.iter(cocco::graph::models::resnet50)
    });
    g.bench_function("build_googlenet", |b| {
        b.iter(cocco::graph::models::googlenet)
    });
    g.finish();
}

fn bench_tiling(c: &mut Criterion) {
    let model = cocco::graph::models::googlenet();
    let members: Vec<_> = model.node_ids().collect();
    let mapper = Mapper::default();
    c.bench_function("tiling/derive_scheme_googlenet_whole", |b| {
        b.iter(|| derive_scheme(&model, &members, &mapper).unwrap())
    });
}

fn bench_evaluator(c: &mut Criterion) {
    let model = cocco::graph::models::resnet50();
    let mut g = c.benchmark_group("evaluator");
    g.bench_function("subgraph_stats_cold", |b| {
        // A fresh evaluator per batch so the cache never warms.
        let members: Vec<_> = model.node_ids().take(12).collect();
        b.iter_batched(
            || Evaluator::new(&model, AcceleratorConfig::default()),
            |eval| eval.subgraph_stats(&members).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("subgraph_stats_cached", |b| {
        let eval = Evaluator::new(&model, AcceleratorConfig::default());
        let members: Vec<_> = model.node_ids().take(12).collect();
        eval.subgraph_stats(&members).unwrap();
        b.iter(|| eval.subgraph_stats(&members).unwrap())
    });
    g.bench_function("eval_partition_depth5", |b| {
        let eval = Evaluator::new(&model, AcceleratorConfig::default());
        let partition = repair(&model, Partition::depth_groups(&model, 5), &|_| true);
        let subgraphs = partition.subgraphs();
        let buffer = BufferConfig::shared(2 << 20);
        b.iter(|| {
            eval.eval_partition(&subgraphs, &buffer, EvalOptions::default())
                .unwrap()
        })
    });
    g.finish();
}

fn bench_repair(c: &mut Criterion) {
    let model = cocco::graph::models::googlenet();
    let mut rng = StdRng::seed_from_u64(42);
    let assignments: Vec<Vec<u32>> = (0..32)
        .map(|_| (0..model.len()).map(|_| rng.gen_range(0..12)).collect())
        .collect();
    let mut i = 0;
    c.bench_function("repair/random_googlenet", |b| {
        b.iter(|| {
            let a = assignments[i % assignments.len()].clone();
            i += 1;
            repair(&model, Partition::from_assignment(a), &|m| m.len() <= 16)
        })
    });
}

fn bench_ga_generation(c: &mut Criterion) {
    let model = cocco::graph::models::googlenet();
    let eval = Evaluator::new(&model, AcceleratorConfig::default());
    let mut g = c.benchmark_group("search");
    g.sample_size(10);
    g.bench_function("ga_500_samples_googlenet", |b| {
        b.iter(|| {
            let ctx = SearchContext::new(
                &model,
                &eval,
                BufferSpace::paper_shared(),
                Objective::paper_energy_capacity(),
                500,
            );
            CoccoGa::default()
                .with_population(50)
                .with_seed(1)
                .run(&ctx)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_models,
    bench_tiling,
    bench_evaluator,
    bench_repair,
    bench_ga_generation
);
criterion_main!(benches);
