//! Micro-benchmarks of the framework's hot paths: model construction, the
//! consumption-centric derivation, subgraph statistics (cold and cached),
//! partition repair and full partition evaluation.
//!
//! Timed with a small std-only harness (the offline toolchain has no
//! criterion): each case is warmed up, then sampled until ~0.25 s of
//! wall-clock or 50 samples, whichever comes first, reporting the median
//! and minimum per-iteration time.
//!
//! Run with: `cargo bench -p cocco-bench --bench micro`

use cocco::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Times `f`, printing `name: median (min) per iteration`.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up and batch-size calibration: aim for batches of >= 1 ms.
    let mut batch = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let budget = Duration::from_millis(250);
    let mut samples = Vec::new();
    let run_start = Instant::now();
    while samples.len() < 50 && (run_start.elapsed() < budget || samples.len() < 5) {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(start.elapsed().as_secs_f64() / f64::from(batch));
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let min = samples[0];
    println!(
        "{name:<42} {:>12} (min {})",
        fmt_time(median),
        fmt_time(min)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

fn main() {
    println!("== micro-benchmarks (median per iteration) ==\n");

    bench("models/build_resnet50", cocco::graph::models::resnet50);
    bench("models/build_googlenet", cocco::graph::models::googlenet);

    {
        let model = cocco::graph::models::googlenet();
        let members: Vec<_> = model.node_ids().collect();
        let mapper = Mapper::default();
        bench("tiling/derive_scheme_googlenet_whole", || {
            derive_scheme(&model, &members, &mapper).unwrap()
        });
    }

    {
        let model = cocco::graph::models::resnet50();
        let members: Vec<_> = model.node_ids().take(12).collect();
        bench("evaluator/subgraph_stats_cold", || {
            // A fresh evaluator per iteration so the cache never warms.
            let eval = Evaluator::new(&model, AcceleratorConfig::default());
            eval.subgraph_stats(&members).unwrap()
        });
        let eval = Evaluator::new(&model, AcceleratorConfig::default());
        eval.subgraph_stats(&members).unwrap();
        bench("evaluator/subgraph_stats_cached", || {
            eval.subgraph_stats(&members).unwrap()
        });
        let partition = repair(&model, Partition::depth_groups(&model, 5), &|_| true);
        let subgraphs = partition.subgraphs();
        let buffer = BufferConfig::shared(2 << 20);
        bench("evaluator/eval_partition_depth5", || {
            eval.eval_partition(&subgraphs, &buffer, EvalOptions::default())
                .unwrap()
        });
    }

    {
        let model = cocco::graph::models::googlenet();
        let mut rng = StdRng::seed_from_u64(42);
        let assignments: Vec<Vec<u32>> = (0..32)
            .map(|_| (0..model.len()).map(|_| rng.gen_range(0..12)).collect())
            .collect();
        let mut i = 0;
        bench("repair/random_googlenet", || {
            let a = assignments[i % assignments.len()].clone();
            i += 1;
            repair(&model, Partition::from_assignment(a), &|m| m.len() <= 16)
        });
    }

    {
        let model = cocco::graph::models::googlenet();
        let eval = Evaluator::new(&model, AcceleratorConfig::default());
        bench("search/ga_500_samples_googlenet", || {
            let ctx = SearchContext::new(
                &model,
                &eval,
                BufferSpace::paper_shared(),
                Objective::paper_energy_capacity(),
                500,
            );
            CoccoGa::default()
                .with_population(50)
                .with_seed(1)
                .run(&ctx)
        });
    }
}
