//! Figure 11 — graph-partition quality under the EMA-opt configuration:
//! EMA cost and bandwidth requirement of Halide's greedy, Irregular-NN's
//! DP, Cocco and the enumeration reference, normalized to Halide, on all
//! eight paper models (1 MB global buffer + 1.125 MB weight buffer).
//!
//! The enumeration's state/expansion budgets reproduce the paper's
//! behaviour: exact on the simpler CNNs, "cannot complete in a reasonable
//! time" (printed as `DNF`) on the large irregular models.
//!
//! Run with: `cargo bench -p cocco-bench --bench fig11_partition`
//! (`COCCO_FULL=1` for paper-scale budgets)

use cocco::prelude::*;
use cocco::search::ExhaustiveLimits;
use cocco_bench::{Scale, Table};

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figure 11: partition quality (EMA-opt, {} GA samples) ==\n",
        scale.partition_samples
    );
    let buffer = BufferConfig::separate(1 << 20, 1152 << 10);
    let mut table = Table::new(
        "fig11_partition",
        &[
            "model",
            "method",
            "EMA MB",
            "EMA/Halide",
            "BW GB/s",
            "BW/Halide",
            "subgraphs",
        ],
    );

    for name in cocco::graph::models::PAPER_MODELS {
        let model = cocco::graph::models::by_name(name).unwrap();
        let evaluator = Evaluator::new(&model, AcceleratorConfig::default());
        let measure = |partition: &Partition| -> (f64, f64, usize) {
            let report = evaluator
                .eval_partition(&partition.subgraphs(), &buffer, EvalOptions::default())
                .expect("evaluation");
            (
                report.ema_bytes as f64 / (1 << 20) as f64,
                report.avg_bw_gbps,
                partition.num_subgraphs(),
            )
        };
        let ctx = || {
            SearchContext::new(
                &model,
                &evaluator,
                BufferSpace::fixed(buffer),
                Objective::partition_only(CostMetric::Ema),
                scale.partition_samples,
            )
        };

        // Halide greedy is the normalization baseline.
        let greedy = GreedyFusion::default().run(&ctx());
        let (ema0, bw0, sg0) = measure(&greedy.best.as_ref().unwrap().partition);

        let mut emit = |method: &str, result: Option<(f64, f64, usize)>| match result {
            Some((ema, bw, sg)) => table.row(&[
                name.to_string(),
                method.to_string(),
                format!("{ema:.2}"),
                format!("{:.3}", ema / ema0),
                format!("{bw:.2}"),
                format!("{:.3}", bw / bw0),
                sg.to_string(),
            ]),
            None => table.row(&[
                name.to_string(),
                method.to_string(),
                "DNF".into(),
                "-".into(),
                "DNF".into(),
                "-".into(),
                "-".into(),
            ]),
        };
        emit("Halide (greedy)", Some((ema0, bw0, sg0)));

        let dp = DepthDp::default().run(&ctx());
        emit(
            "Irregular-NN (DP)",
            dp.best.as_ref().map(|b| measure(&b.partition)),
        );

        let ga = CoccoGa::default()
            .with_population(scale.population)
            .with_seed(0xC0CC0)
            .run(&ctx());
        emit("Cocco", ga.best.as_ref().map(|b| measure(&b.partition)));

        let limits = ExhaustiveLimits {
            max_states: 60_000,
            max_expansions: if scale.partition_samples >= 400_000 {
                20_000_000
            } else {
                2_000_000
            },
        };
        let exhaustive = Exhaustive::new(limits).run(&ctx());
        emit(
            "Enumeration",
            if exhaustive.completed {
                exhaustive.best.as_ref().map(|b| measure(&b.partition))
            } else {
                None
            },
        );
    }
    table.emit();
    println!(
        "paper shapes: Cocco matches the enumeration optimum where it\n\
         completes (plain/medium CNNs) and beats greedy and DP on the large\n\
         irregular models where enumeration does not finish."
    );
}
