//! Partition validation errors.

use std::error::Error;
use std::fmt;

/// Why a partition is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// The assignment vector length does not match the graph.
    WrongLength {
        /// Assignment entries provided.
        got: usize,
        /// Graph node count.
        expected: usize,
    },
    /// A subgraph is not weakly connected.
    Disconnected {
        /// The offending subgraph id.
        subgraph: u32,
    },
    /// The quotient graph contains a cycle, so no execution order satisfies
    /// `P(u) ≤ P(v)` on every edge.
    CyclicQuotient,
    /// The partition has no subgraphs (empty graph).
    Empty,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::WrongLength { got, expected } => {
                write!(
                    f,
                    "assignment has {got} entries for a {expected}-node graph"
                )
            }
            PartitionError::Disconnected { subgraph } => {
                write!(f, "subgraph {subgraph} is not weakly connected")
            }
            PartitionError::CyclicQuotient => {
                write!(f, "quotient graph is cyclic: no execution order exists")
            }
            PartitionError::Empty => write!(f, "partition covers no nodes"),
        }
    }
}

impl Error for PartitionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_identify_subgraph() {
        let e = PartitionError::Disconnected { subgraph: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn is_std_error() {
        fn check<E: Error + Send + Sync>(_: E) {}
        check(PartitionError::CyclicQuotient);
    }
}
