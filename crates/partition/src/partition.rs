//! The partition type.

use crate::error::PartitionError;
use crate::quotient::Quotient;
use cocco_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A partition `P : V → ℕ` of a computation graph into ordered subgraphs.
///
/// Subgraph ids are dense after [`canonicalize`](Partition::canonicalize):
/// id `i` is the `i`-th subgraph in execution order.
///
/// # Examples
///
/// ```
/// use cocco_partition::Partition;
///
/// let g = cocco_graph::models::chain(4); // input + 4 convs
/// let p = Partition::singletons(g.len());
/// assert_eq!(p.num_subgraphs(), 5);
/// assert!(p.validate(&g).is_ok());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partition {
    assignment: Vec<u32>,
}

impl Partition {
    /// One node per subgraph, in topological order (layer-level execution).
    pub fn singletons(n: usize) -> Self {
        Self {
            assignment: (0..n as u32).collect(),
        }
    }

    /// All nodes in a single subgraph.
    pub fn whole(n: usize) -> Self {
        Self {
            assignment: vec![0; n],
        }
    }

    /// Builds a partition from an explicit assignment (subgraph id per
    /// node, indexed by [`NodeId`]); ids need not be dense.
    pub fn from_assignment(assignment: Vec<u32>) -> Self {
        Self { assignment }
    }

    /// Groups layers by `⌊depth_rank / l⌋` over the topological order — the
    /// fixed-`L` fusion of paper Figure 3 (run [`repair`](crate::repair)
    /// afterwards to restore connectivity on branchy graphs).
    ///
    /// # Panics
    ///
    /// Panics if `l == 0`.
    pub fn depth_groups(graph: &Graph, l: usize) -> Self {
        assert!(l > 0, "group size must be nonzero");
        // Order nodes by (depth, id) and chop into runs of l.
        let depths = graph.depths();
        let mut order: Vec<usize> = (0..graph.len()).collect();
        order.sort_by_key(|&i| (depths[i], i));
        let mut assignment = vec![0u32; graph.len()];
        for (rank, &node) in order.iter().enumerate() {
            assignment[node] = (rank / l) as u32;
        }
        Self { assignment }
    }

    /// Groups layers into *connected* subgraphs of up to `l` nodes by
    /// growing each group from the earliest unassigned layer over
    /// ready neighbours (producers already covered) — the "fuse L layers"
    /// scheme of paper Figure 3 for arbitrary topologies. The result is
    /// always valid: groups are connected and predecessor-closed with
    /// respect to earlier groups.
    ///
    /// # Panics
    ///
    /// Panics if `l == 0`.
    pub fn connected_groups(graph: &Graph, l: usize) -> Self {
        assert!(l > 0, "group size must be nonzero");
        let n = graph.len();
        let mut assignment = vec![u32::MAX; n];
        let mut group = 0u32;
        for seed in 0..n {
            if assignment[seed] != u32::MAX {
                continue;
            }
            let mut members = vec![seed];
            assignment[seed] = group;
            while members.len() < l {
                // Candidates: unassigned neighbours whose producers are all
                // covered by earlier groups or the current one.
                let mut next: Option<usize> = None;
                for &m in &members {
                    let id = NodeId::from_index(m);
                    for &nb in graph.consumers(id).iter().chain(graph.producers(id)) {
                        let i = nb.index();
                        if assignment[i] != u32::MAX {
                            continue;
                        }
                        let ready = graph
                            .producers(nb)
                            .iter()
                            .all(|p| assignment[p.index()] != u32::MAX);
                        if ready && next.is_none_or(|best| i < best) {
                            next = Some(i);
                        }
                    }
                }
                match next {
                    Some(i) => {
                        assignment[i] = group;
                        members.push(i);
                    }
                    None => break,
                }
            }
            group += 1;
        }
        Self { assignment }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` when the partition covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The subgraph id of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn subgraph_of(&self, node: NodeId) -> u32 {
        self.assignment[node.index()]
    }

    /// Reassigns `node` to subgraph `subgraph` (validity not enforced; run
    /// [`repair`](crate::repair) afterwards).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn assign(&mut self, node: NodeId, subgraph: u32) {
        self.assignment[node.index()] = subgraph;
    }

    /// The raw assignment, indexed by node.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Number of distinct subgraphs.
    pub fn num_subgraphs(&self) -> usize {
        let mut ids: Vec<u32> = self.assignment.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// A fresh subgraph id not currently in use.
    pub fn fresh_id(&self) -> u32 {
        self.assignment.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Member lists per subgraph, ordered by subgraph id (dense ids assumed
    /// — call [`canonicalize`](Partition::canonicalize) first). Members are
    /// ascending, i.e. topologically ordered.
    pub fn subgraphs(&self) -> Vec<Vec<NodeId>> {
        let mut max = 0u32;
        for &a in &self.assignment {
            max = max.max(a);
        }
        let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); max as usize + 1];
        for (i, &a) in self.assignment.iter().enumerate() {
            out[a as usize].push(NodeId::from_index(i));
        }
        out.retain(|v| !v.is_empty());
        out
    }

    /// Renumbers subgraph ids densely in execution order (quotient
    /// topological order, ties broken by smallest member), returning `false`
    /// if the quotient is cyclic (ids are then left compacted but
    /// order-free).
    pub fn canonicalize(&mut self, graph: &Graph) -> bool {
        let quotient = Quotient::build(graph, self);
        match quotient.topo_order() {
            Some(order) => {
                // order[i] = old id of the i-th subgraph to execute.
                let mut remap = vec![u32::MAX; quotient.num_subgraphs()];
                for (new_id, &old) in order.iter().enumerate() {
                    remap[old as usize] = new_id as u32;
                }
                for a in &mut self.assignment {
                    *a = remap[quotient.compact_id(*a) as usize];
                }
                true
            }
            None => {
                for a in &mut self.assignment {
                    *a = quotient.compact_id(*a);
                }
                false
            }
        }
    }

    /// Checks validity: connectivity of every subgraph and acyclicity of
    /// the quotient.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition.
    pub fn validate(&self, graph: &Graph) -> Result<(), PartitionError> {
        if self.assignment.is_empty() {
            return Err(PartitionError::Empty);
        }
        if self.assignment.len() != graph.len() {
            return Err(PartitionError::WrongLength {
                got: self.assignment.len(),
                expected: graph.len(),
            });
        }
        for members in self.subgraphs() {
            if !graph.is_connected_subset(&members) {
                return Err(PartitionError::Disconnected {
                    subgraph: self.assignment[members[0].index()],
                });
            }
        }
        let quotient = Quotient::build(graph, self);
        if quotient.topo_order().is_none() {
            return Err(PartitionError::CyclicQuotient);
        }
        Ok(())
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "partition of {} nodes into {} subgraphs",
            self.len(),
            self.num_subgraphs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_and_whole_are_valid() {
        let g = cocco_graph::models::diamond();
        assert!(Partition::singletons(g.len()).validate(&g).is_ok());
        assert!(Partition::whole(g.len()).validate(&g).is_ok());
    }

    #[test]
    fn precedence_violation_detected() {
        // chain: input -> c0 -> c1. Putting input and c1 together without
        // c0 breaks connectivity; putting c0 alone after them breaks order.
        let g = cocco_graph::models::chain(2);
        let p = Partition::from_assignment(vec![0, 1, 0]);
        assert!(p.validate(&g).is_err());
    }

    #[test]
    fn disconnected_subgraph_detected() {
        let g = cocco_graph::models::diamond(); // input, a, l, r, add
                                                // l and r share no edge: {l, r} alone is disconnected.
        let p = Partition::from_assignment(vec![0, 0, 1, 1, 2]);
        assert_eq!(
            p.validate(&g),
            Err(PartitionError::Disconnected { subgraph: 1 })
        );
    }

    #[test]
    fn cyclic_quotient_detected() {
        // diamond with l in sg0 and r in sg1, a in sg0, add in sg0:
        // edges sg0->sg1 (a->r) and sg1->sg0 (r->add) form a cycle.
        let g = cocco_graph::models::diamond();
        let p = Partition::from_assignment(vec![0, 0, 0, 1, 0]);
        assert_eq!(p.validate(&g), Err(PartitionError::CyclicQuotient));
    }

    #[test]
    fn canonicalize_orders_by_execution() {
        let g = cocco_graph::models::chain(3); // 4 nodes
        let mut p = Partition::from_assignment(vec![7, 7, 3, 3]);
        assert!(p.canonicalize(&g));
        assert_eq!(p.assignment(), &[0, 0, 1, 1]);
        assert!(p.validate(&g).is_ok());
    }

    #[test]
    fn canonicalize_reports_cycles() {
        let g = cocco_graph::models::diamond();
        let mut p = Partition::from_assignment(vec![0, 0, 0, 1, 0]);
        assert!(!p.canonicalize(&g));
    }

    #[test]
    fn subgraph_members_are_topological() {
        let g = cocco_graph::models::googlenet();
        let p = Partition::depth_groups(&g, 5);
        for members in p.subgraphs() {
            assert!(members.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn depth_groups_have_expected_sizes() {
        let g = cocco_graph::models::chain(9); // 10 nodes
        let p = Partition::depth_groups(&g, 3);
        let sizes: Vec<usize> = p.subgraphs().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn fresh_id_is_unused() {
        let p = Partition::from_assignment(vec![0, 5, 2]);
        assert_eq!(p.fresh_id(), 6);
    }

    #[test]
    fn connected_groups_are_valid_and_sized() {
        for model in ["googlenet", "randwire-a", "resnet50"] {
            let g = crate::partition::tests::model(model);
            for l in [1usize, 3, 5] {
                let p = Partition::connected_groups(&g, l);
                assert!(p.validate(&g).is_ok(), "{model} L={l}");
                let sizes: Vec<usize> = p.subgraphs().iter().map(Vec::len).collect();
                assert!(sizes.iter().all(|&s| s <= l), "{model} L={l}: {sizes:?}");
                // Fusion actually happens (branch joins cap group growth,
                // so the average sits below l but well above singletons).
                if l > 1 {
                    let avg = g.len() as f64 / sizes.len() as f64;
                    assert!(avg > 1.8, "{model} L={l}: avg {avg}");
                }
            }
        }
    }

    fn model(name: &str) -> cocco_graph::Graph {
        cocco_graph::models::by_name(name).unwrap()
    }
}
