//! Per-subgraph content fingerprints stored alongside a partition — the
//! cache identity the incremental evaluation path keys on.
//!
//! A [`PartitionFingerprints`] holds the [`NodeSetFp`] of every subgraph of
//! one partition in two views: **by position** (aligned with
//! [`Partition::subgraphs`], the order evaluation consumes) and **by
//! anchor** (the subgraph's smallest member node, with its fingerprint).
//! The anchor view is the incremental carrier: node ids are stable across
//! repair's id renumbering, and an unchanged member set keeps its smallest
//! member, so after a mutation the next generation copies every clean
//! subgraph's fingerprint through its anchor in O(log #subgraphs) and
//! re-derives only the subgraphs a [`PartitionDelta`] marked dirty — no
//! member vector is re-hashed, no per-lookup key is allocated. Both views
//! are `O(#subgraphs)` in size, so fingerprint sets travel cheaply inside
//! memos and cache entries.
//!
//! Correctness rests on the delta invariant (see [`PartitionDelta`]): a
//! subgraph containing no dirty node has exactly the member set it had in
//! the previous partition, hence the same anchor and the same fingerprint.
//! Debug builds verify every copied fingerprint against a from-scratch
//! recomputation.

use crate::delta::PartitionDelta;
use crate::layout::SubgraphsView;
use crate::partition::Partition;
use cocco_graph::{NodeId, NodeSetFp};

/// The subgraph fingerprints of one partition (see module docs).
///
/// # Examples
///
/// ```
/// use cocco_partition::{Partition, PartitionDelta, PartitionFingerprints};
/// use cocco_graph::NodeId;
///
/// let before = Partition::from_assignment(vec![0, 0, 1, 1]);
/// let fps = PartitionFingerprints::compute(&before);
///
/// // Move node 3 into subgraph 0 and record the dirt.
/// let mut after = before.clone();
/// let mut delta = PartitionDelta::clean(4);
/// delta.touch_subgraph(&after, 0);
/// delta.touch_subgraph(&after, 1);
/// after.assign(NodeId::from_index(3), 0);
///
/// let refreshed = fps.refresh(&after, &delta);
/// assert_eq!(refreshed, PartitionFingerprints::compute(&after));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionFingerprints {
    /// Fingerprint of subgraph `i` in [`Partition::subgraphs`] order.
    by_position: Vec<NodeSetFp>,
    /// `(anchor, fingerprint)` per subgraph — the anchor is the subgraph's
    /// smallest member — sorted by anchor for binary-search lookup.
    anchors: Vec<(NodeId, NodeSetFp)>,
}

impl PartitionFingerprints {
    /// Fingerprints every subgraph of `partition` from scratch — one
    /// arithmetic pass over the assignment, no member vectors touched.
    pub fn compute(partition: &Partition) -> Self {
        let assignment = partition.assignment();
        let max = assignment.iter().copied().max().map_or(0, |m| m as usize);
        let mut acc = vec![NodeSetFp::EMPTY; max + 1];
        let mut anchor_of = vec![None; max + 1];
        for (i, &a) in assignment.iter().enumerate() {
            acc[a as usize].insert(NodeId::from_index(i));
            // Nodes iterate in ascending order: the first hit is the anchor.
            anchor_of[a as usize].get_or_insert(NodeId::from_index(i));
        }
        let by_position: Vec<NodeSetFp> = acc
            .iter()
            .zip(&anchor_of)
            .filter(|(_, anchor)| anchor.is_some())
            .map(|(&fp, _)| fp)
            .collect();
        let anchors = Self::index(
            anchor_of
                .into_iter()
                .zip(acc)
                .filter_map(|(anchor, fp)| anchor.map(|a| (a, fp))),
        );
        Self {
            by_position,
            anchors,
        }
    }

    /// Fingerprints an explicit ordered subgraph list (the evaluation-side
    /// view of a partition — nested vectors or a flat
    /// [`PartitionLayout`](crate::PartitionLayout); members of each
    /// subgraph must be ascending, as [`Partition::subgraphs`] produces
    /// them).
    pub fn from_subgraphs<S: SubgraphsView + ?Sized>(subgraphs: &S) -> Self {
        let n = subgraphs.num_subgraphs();
        let by_position: Vec<NodeSetFp> = (0..n)
            .map(|i| NodeSetFp::of_members(subgraphs.members_of(i)))
            .collect();
        let anchors = Self::index(
            (0..n)
                .zip(&by_position)
                .filter_map(|(i, &fp)| subgraphs.members_of(i).first().map(|&a| (a, fp))),
        );
        Self {
            by_position,
            anchors,
        }
    }

    /// Builds the sorted anchor index.
    fn index(pairs: impl Iterator<Item = (NodeId, NodeSetFp)>) -> Vec<(NodeId, NodeSetFp)> {
        let mut anchors: Vec<(NodeId, NodeSetFp)> = pairs.collect();
        anchors.sort_unstable_by_key(|&(anchor, _)| anchor);
        anchors
    }

    /// Incrementally re-fingerprints `subgraphs` given one per-position
    /// dirty flag: clean positions copy this fingerprint set's entry
    /// through their (stable) anchor, dirty positions re-derive from their
    /// members. Debug builds assert every copied fingerprint equals the
    /// from-scratch one.
    pub fn refresh_positions<S: SubgraphsView + ?Sized>(
        &self,
        subgraphs: &S,
        dirty: &[bool],
    ) -> Self {
        let n = subgraphs.num_subgraphs();
        let by_position: Vec<NodeSetFp> = (0..n)
            .map(|i| {
                let members = subgraphs.members_of(i);
                let clean = !dirty.get(i).copied().unwrap_or(true);
                if clean {
                    if let Some(fp) = members.first().and_then(|&m| self.anchored(m)) {
                        debug_assert_eq!(
                            fp,
                            NodeSetFp::of_members(members),
                            "clean subgraph's incremental fingerprint diverged from recompute"
                        );
                        return fp;
                    }
                }
                NodeSetFp::of_members(members)
            })
            .collect();
        let anchors = Self::index(
            (0..n)
                .zip(&by_position)
                .filter_map(|(i, &fp)| subgraphs.members_of(i).first().map(|&a| (a, fp))),
        );
        Self {
            by_position,
            anchors,
        }
    }

    /// [`refresh_positions`](Self::refresh_positions) driven by a
    /// [`PartitionDelta`]: only subgraphs of `partition` containing a dirty
    /// node re-fingerprint.
    pub fn refresh(&self, partition: &Partition, delta: &PartitionDelta) -> Self {
        self.refresh_positions(&partition.subgraphs(), &delta.dirty_subgraphs(partition))
    }

    /// The delta between the partition these fingerprints describe and
    /// `partition`: every node whose subgraph *member set* differs is
    /// marked dirty (a member set survives iff its anchor still maps to
    /// the same fingerprint). This turns an edit of unknown extent (e.g.
    /// a crossover child) into an honest delta satisfying the member-set
    /// invariant, so the incremental path can trust it.
    pub fn delta_against(&self, partition: &Partition) -> PartitionDelta {
        // Single pass over the assignment (like `compute`) — no member
        // vectors are materialized; this runs per crossover child.
        let assignment = partition.assignment();
        let max = assignment.iter().copied().max().map_or(0, |m| m as usize);
        let mut acc = vec![NodeSetFp::EMPTY; max + 1];
        let mut anchor_of: Vec<Option<NodeId>> = vec![None; max + 1];
        for (i, &a) in assignment.iter().enumerate() {
            acc[a as usize].insert(NodeId::from_index(i));
            anchor_of[a as usize].get_or_insert(NodeId::from_index(i));
        }
        let mut delta = PartitionDelta::clean(partition.len());
        for (i, &a) in assignment.iter().enumerate() {
            let unchanged = anchor_of[a as usize]
                .is_some_and(|anchor| self.anchored(anchor) == Some(acc[a as usize]));
            if !unchanged {
                delta.touch(NodeId::from_index(i));
            }
        }
        delta
    }

    /// Per-position fingerprints, aligned with [`Partition::subgraphs`].
    pub fn positions(&self) -> &[NodeSetFp] {
        &self.by_position
    }

    /// Fingerprint of the subgraph anchored at `anchor` (its smallest
    /// member), if any.
    pub fn anchored(&self, anchor: NodeId) -> Option<NodeSetFp> {
        self.anchors
            .binary_search_by_key(&anchor, |&(a, _)| a)
            .ok()
            .map(|i| self.anchors[i].1)
    }

    /// Number of fingerprinted subgraphs.
    pub fn len(&self) -> usize {
        self.by_position.len()
    }

    /// `true` when no subgraph is covered.
    pub fn is_empty(&self) -> bool {
        self.by_position.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::repair_with_delta;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn compute_matches_from_subgraphs() {
        let p = Partition::from_assignment(vec![9, 2, 2, 9, 4]);
        let fps = PartitionFingerprints::compute(&p);
        assert_eq!(fps, PartitionFingerprints::from_subgraphs(&p.subgraphs()));
        assert_eq!(fps.len(), 3);
        // The anchor view agrees with membership.
        for (members, &fp) in p.subgraphs().iter().zip(fps.positions()) {
            assert_eq!(fps.anchored(members[0]), Some(fp));
            assert_eq!(fp, NodeSetFp::of_members(members));
        }
        // Non-anchor nodes resolve to nothing.
        assert_eq!(fps.anchored(NodeId::from_index(2)), None);
    }

    #[test]
    fn refresh_equals_compute_over_random_repair_sequences() {
        let g = cocco_graph::models::googlenet();
        let mut rng = StdRng::seed_from_u64(0xF1F0);
        let mut partition = Partition::connected_groups(&g, 3);
        let mut fps = PartitionFingerprints::compute(&partition);
        for step in 0..40 {
            // Random node move + repair, with the delta recorded.
            let mut delta = PartitionDelta::clean(g.len());
            let node = NodeId::from_index(rng.gen_range(0..g.len()));
            let target = rng.gen_range(0..partition.fresh_id() + 1);
            delta.touch_subgraph(&partition, partition.subgraph_of(node));
            delta.touch_subgraph(&partition, target);
            delta.touch(node);
            partition.assign(node, target);
            partition = repair_with_delta(&g, partition, &|m| m.len() <= 7, &mut delta);
            fps = fps.refresh(&partition, &delta);
            assert_eq!(
                fps,
                PartitionFingerprints::compute(&partition),
                "step {step}: incremental fingerprints diverged"
            );
        }
    }

    #[test]
    fn delta_against_marks_exactly_changed_member_sets() {
        let before = Partition::from_assignment(vec![0, 0, 1, 1, 2]);
        let fps = PartitionFingerprints::compute(&before);
        // Move node 3 from subgraph 1 to subgraph 2: subgraphs 1 and 2
        // change, subgraph 0 does not.
        let after = Partition::from_assignment(vec![0, 0, 1, 2, 2]);
        let delta = fps.delta_against(&after);
        assert!(!delta.is_dirty(NodeId::from_index(0)));
        assert!(!delta.is_dirty(NodeId::from_index(1)));
        assert!(delta.is_dirty(NodeId::from_index(2)));
        assert!(delta.is_dirty(NodeId::from_index(3)));
        assert!(delta.is_dirty(NodeId::from_index(4)));
        // Identical partitions produce a clean delta even under different
        // subgraph ids.
        let renumbered = Partition::from_assignment(vec![7, 7, 3, 3, 5]);
        assert!(fps.delta_against(&renumbered).is_clean());
    }

    #[test]
    fn delta_against_catches_same_anchor_different_members() {
        // {0,1,2} keeps its anchor when it shrinks to {0,1}: the anchor
        // alone must not make it look clean — the fingerprint does the
        // discriminating.
        let before = Partition::from_assignment(vec![0, 0, 0, 1]);
        let fps = PartitionFingerprints::compute(&before);
        let after = Partition::from_assignment(vec![0, 0, 1, 1]);
        let delta = fps.delta_against(&after);
        assert!(delta.is_all(), "both member sets changed");
    }

    #[test]
    fn refresh_with_conservative_extra_dirt_is_still_exact() {
        let p = Partition::from_assignment(vec![0, 0, 1, 1]);
        let fps = PartitionFingerprints::compute(&p);
        // Everything dirty: refresh degenerates to compute.
        let all = PartitionDelta::all(4);
        assert_eq!(fps.refresh(&p, &all), PartitionFingerprints::compute(&p));
    }
}
