//! The quotient DAG obtained by contracting each subgraph to one vertex.

use crate::partition::Partition;
use cocco_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The contracted graph of a partition: one vertex per subgraph, one edge
/// per pair of subgraphs connected by at least one graph edge.
///
/// Subgraph ids are compacted to `0..num_subgraphs()`; use
/// [`compact_id`](Quotient::compact_id) to translate original ids.
///
/// # Examples
///
/// ```
/// use cocco_partition::{Partition, Quotient};
///
/// let g = cocco_graph::models::chain(3);
/// let p = Partition::from_assignment(vec![0, 0, 1, 1]);
/// let q = Quotient::build(&g, &p);
/// assert_eq!(q.num_subgraphs(), 2);
/// assert!(q.topo_order().is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Quotient {
    /// compact id per original id, indexed via binary search over originals.
    originals: Vec<u32>,
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    min_member: Vec<u32>,
}

impl Quotient {
    /// Contracts `partition` over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the partition length does not match the graph.
    pub fn build(graph: &Graph, partition: &Partition) -> Self {
        assert_eq!(
            partition.len(),
            graph.len(),
            "partition does not cover the graph"
        );
        let mut originals: Vec<u32> = partition.assignment().to_vec();
        originals.sort_unstable();
        originals.dedup();
        let k = originals.len();
        let compact = |orig: u32| -> u32 {
            // cocco-audit: allow(R1) originals is the sorted-deduped image of the same assignment the ids come from
            originals.binary_search(&orig).expect("id exists") as u32
        };
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut min_member = vec![u32::MAX; k];
        for (i, &a) in partition.assignment().iter().enumerate() {
            let c = compact(a) as usize;
            min_member[c] = min_member[c].min(i as u32);
        }
        for id in graph.node_ids() {
            let from = compact(partition.subgraph_of(id));
            for &cons in graph.consumers(id) {
                let to = compact(partition.subgraph_of(cons));
                if from != to {
                    succs[from as usize].push(to);
                    preds[to as usize].push(from);
                }
            }
        }
        for v in succs.iter_mut().chain(preds.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        Self {
            originals,
            succs,
            preds,
            min_member,
        }
    }

    /// Number of subgraphs (quotient vertices).
    pub fn num_subgraphs(&self) -> usize {
        self.originals.len()
    }

    /// Translates an original subgraph id to its compact id.
    ///
    /// # Panics
    ///
    /// Panics if `original` is not a subgraph id of the partition.
    pub fn compact_id(&self, original: u32) -> u32 {
        self.originals
            .binary_search(&original)
            // cocco-audit: allow(R1) documented panic: the contract requires a subgraph id of this partition
            .expect("unknown subgraph id") as u32
    }

    /// Successor subgraphs of compact id `id`.
    pub fn succs(&self, id: u32) -> &[u32] {
        &self.succs[id as usize]
    }

    /// Predecessor subgraphs of compact id `id`.
    pub fn preds(&self, id: u32) -> &[u32] {
        &self.preds[id as usize]
    }

    /// Kahn topological order over compact ids (ties broken by smallest
    /// member node, giving a deterministic execution order), or `None` if
    /// the quotient is cyclic.
    pub fn topo_order(&self) -> Option<Vec<u32>> {
        let k = self.num_subgraphs();
        let mut indegree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        for (id, &d) in indegree.iter().enumerate() {
            if d == 0 {
                heap.push(Reverse((self.min_member[id], id as u32)));
            }
        }
        let mut order = Vec::with_capacity(k);
        while let Some(Reverse((_, id))) = heap.pop() {
            order.push(id);
            for &s in &self.succs[id as usize] {
                indegree[s as usize] -= 1;
                if indegree[s as usize] == 0 {
                    heap.push(Reverse((self.min_member[s as usize], s)));
                }
            }
        }
        (order.len() == k).then_some(order)
    }

    /// Strongly connected components over compact ids (iterative Tarjan),
    /// in reverse topological order of the condensation.
    pub fn sccs(&self) -> Vec<Vec<u32>> {
        let k = self.num_subgraphs();
        let mut index = vec![u32::MAX; k];
        let mut lowlink = vec![0u32; k];
        let mut on_stack = vec![false; k];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut sccs: Vec<Vec<u32>> = Vec::new();
        // Explicit DFS: (node, next child position).
        let mut call: Vec<(u32, usize)> = Vec::new();
        for start in 0..k as u32 {
            if index[start as usize] != u32::MAX {
                continue;
            }
            call.push((start, 0));
            index[start as usize] = next_index;
            lowlink[start as usize] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start as usize] = true;
            while let Some(&mut (v, ref mut child)) = call.last_mut() {
                if *child < self.succs[v as usize].len() {
                    let w = self.succs[v as usize][*child];
                    *child += 1;
                    if index[w as usize] == u32::MAX {
                        index[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call.push((w, 0));
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        lowlink[parent as usize] =
                            lowlink[parent as usize].min(lowlink[v as usize]);
                    }
                    if lowlink[v as usize] == index[v as usize] {
                        let mut scc = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        scc.sort_unstable();
                        sccs.push(scc);
                    }
                }
            }
        }
        sccs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_quotient_is_a_path() {
        let g = cocco_graph::models::chain(3);
        let p = Partition::from_assignment(vec![0, 0, 1, 2]);
        let q = Quotient::build(&g, &p);
        assert_eq!(q.num_subgraphs(), 3);
        assert_eq!(q.topo_order(), Some(vec![0, 1, 2]));
        assert_eq!(q.succs(0), &[1]);
        assert_eq!(q.preds(2), &[1]);
    }

    #[test]
    fn cycle_detected_by_topo_and_scc() {
        let g = cocco_graph::models::diamond(); // input,a,l,r,add
        let p = Partition::from_assignment(vec![0, 0, 0, 1, 0]);
        let q = Quotient::build(&g, &p);
        assert!(q.topo_order().is_none());
        let sccs = q.sccs();
        // {0, 1} form one SCC.
        assert!(sccs.iter().any(|s| s == &[0, 1]));
    }

    #[test]
    fn sccs_of_dag_are_singletons() {
        let g = cocco_graph::models::googlenet();
        let p = Partition::depth_groups(&g, 4);
        let q = Quotient::build(&g, &p);
        let sccs = q.sccs();
        assert_eq!(sccs.len(), q.num_subgraphs());
        assert!(sccs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn sparse_ids_are_compacted() {
        let g = cocco_graph::models::chain(2);
        let p = Partition::from_assignment(vec![10, 10, 99]);
        let q = Quotient::build(&g, &p);
        assert_eq!(q.num_subgraphs(), 2);
        assert_eq!(q.compact_id(10), 0);
        assert_eq!(q.compact_id(99), 1);
    }

    #[test]
    fn topo_tie_break_is_deterministic() {
        // Two independent branches: order must follow smallest member id.
        let g = cocco_graph::models::diamond();
        let p = Partition::from_assignment(vec![0, 0, 1, 2, 3]);
        let q = Quotient::build(&g, &p);
        let order = q.topo_order().unwrap();
        assert_eq!(order[0], 0);
        // l (node 2) before r (node 3).
        assert_eq!(order[1], q.compact_id(1));
        assert_eq!(order[2], q.compact_id(2));
    }
}
