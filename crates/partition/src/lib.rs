//! Graph partitions for subgraph-level execution (paper §4.1.1).
//!
//! A partition `P : V → ℕ` assigns every layer to a subgraph; layer `v` is
//! computed in the `P(v)`-th subgraph. A *valid* partition satisfies:
//!
//! * **precedence** — for every edge `(u, v)`, `P(u) ≤ P(v)`; equivalently,
//!   the quotient DAG formed by contracting each subgraph is acyclic, so an
//!   execution order exists;
//! * **connectivity** — every subgraph is weakly connected in `G`
//!   (otherwise the grouping is meaningless).
//!
//! [`Partition`] stores the assignment, [`Quotient`] exposes the contracted
//! DAG (with SCC computation for repair), and [`repair`] restores validity
//! after arbitrary mutations: split subgraphs into connected components,
//! merge quotient SCCs (which preserves connectivity), then split any
//! subgraph that exceeds the buffer via the paper's in-situ
//! `split-subgraph` (§4.4.4).

mod delta;
mod error;
mod fingerprint;
mod layout;
mod partition;
mod quotient;
mod repair;

pub use delta::PartitionDelta;
pub use error::PartitionError;
pub use fingerprint::PartitionFingerprints;
pub use layout::{LayoutArena, PartitionLayout, SubgraphsView};
pub use partition::Partition;
pub use quotient::Quotient;
pub use repair::{
    repair, repair_connectivity, repair_connectivity_with_delta, repair_with_delta,
    split_oversized, split_oversized_with_delta,
};
