//! Dirty-node tracking across mutation and repair — the change record the
//! incremental evaluation path consumes.

use crate::partition::Partition;
use cocco_graph::NodeId;

/// Records which **nodes** of a partition had their subgraph membership
/// changed by a sequence of edits (mutations, repair passes).
///
/// The delta is node-indexed rather than subgraph-indexed on purpose:
/// repair renumbers subgraph ids freely (canonicalization), but node ids
/// are stable, so dirt recorded before repair survives it. The invariant
/// every emitter maintains is *member-set* based:
///
/// > if a subgraph's member set differs from the member set it had in the
/// > previously scored partition, **all** of its current and former
/// > members are marked dirty.
///
/// Operators therefore mark whole affected subgraphs (source and target of
/// a node move, both sides of a merge, every piece of a split), not just
/// the moved node. A subgraph containing no dirty node is guaranteed to be
/// bit-for-bit the same member set as before, so its cached evaluation
/// terms can be reused. The consumer (`cocco-engine`) additionally
/// re-checks the one cross-subgraph coupling (the successor's weight
/// prefetch) itself, so an over-conservative delta costs time and an
/// emitter bug is bounded by that check plus the property tests.
///
/// # Examples
///
/// ```
/// use cocco_partition::{Partition, PartitionDelta};
/// use cocco_graph::NodeId;
///
/// let p = Partition::from_assignment(vec![0, 0, 1, 1]);
/// let mut delta = PartitionDelta::clean(4);
/// assert!(!delta.is_dirty(NodeId::from_index(0)));
/// delta.touch(NodeId::from_index(2));
/// assert_eq!(delta.dirty_subgraphs(&p), vec![false, true]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionDelta {
    dirty: Vec<bool>,
}

impl PartitionDelta {
    /// A delta over `n` nodes with nothing marked dirty.
    pub fn clean(n: usize) -> Self {
        Self {
            dirty: vec![false; n],
        }
    }

    /// A delta over `n` nodes with everything marked dirty (the
    /// conservative record for edits of unknown extent, e.g. crossover).
    pub fn all(n: usize) -> Self {
        Self {
            dirty: vec![true; n],
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.dirty.len()
    }

    /// `true` when the delta covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Marks one node dirty.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn touch(&mut self, node: NodeId) {
        self.dirty[node.index()] = true;
    }

    /// Marks every member of `members` dirty.
    pub fn touch_members(&mut self, members: &[NodeId]) {
        for &m in members {
            self.dirty[m.index()] = true;
        }
    }

    /// Marks every node currently assigned to `subgraph` in `partition`.
    pub fn touch_subgraph(&mut self, partition: &Partition, subgraph: u32) {
        for (i, &a) in partition.assignment().iter().enumerate() {
            if a == subgraph {
                self.dirty[i] = true;
            }
        }
    }

    /// Marks everything dirty.
    pub fn touch_all(&mut self) {
        self.dirty.fill(true);
    }

    /// Whether `node` is marked dirty.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_dirty(&self, node: NodeId) -> bool {
        self.dirty[node.index()]
    }

    /// Number of dirty nodes.
    pub fn dirty_count(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// `true` when every node is dirty (no reuse possible).
    pub fn is_all(&self) -> bool {
        self.dirty.iter().all(|&d| d)
    }

    /// `true` when no node is dirty.
    pub fn is_clean(&self) -> bool {
        !self.dirty.iter().any(|&d| d)
    }

    /// Folds another delta's dirt into this one.
    ///
    /// # Panics
    ///
    /// Panics if the deltas cover different node counts.
    pub fn union(&mut self, other: &PartitionDelta) {
        assert_eq!(self.len(), other.len(), "deltas cover different graphs");
        for (d, &o) in self.dirty.iter_mut().zip(&other.dirty) {
            *d |= o;
        }
    }

    /// Projects node dirt onto `partition`'s subgraphs: one flag per
    /// subgraph in the order [`Partition::subgraphs`] returns them, `true`
    /// iff the subgraph contains a dirty node.
    ///
    /// # Panics
    ///
    /// Panics if the delta does not cover the partition's node count.
    pub fn dirty_subgraphs(&self, partition: &Partition) -> Vec<bool> {
        assert_eq!(
            self.len(),
            partition.len(),
            "delta does not cover the partition"
        );
        let assignment = partition.assignment();
        let max = assignment.iter().copied().max().map_or(0, |m| m as usize);
        // Mirror Partition::subgraphs(): per id, (has members, is dirty),
        // then keep the flags of non-empty ids in id order.
        let mut populated = vec![false; max + 1];
        let mut dirty = vec![false; max + 1];
        for (i, &a) in assignment.iter().enumerate() {
            populated[a as usize] = true;
            dirty[a as usize] |= self.dirty[i];
        }
        populated
            .into_iter()
            .zip(dirty)
            .filter(|(p, _)| *p)
            .map(|(_, d)| d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_and_all_constructors() {
        let clean = PartitionDelta::clean(5);
        assert!(clean.is_clean());
        assert!(!clean.is_all());
        assert_eq!(clean.dirty_count(), 0);
        let all = PartitionDelta::all(5);
        assert!(all.is_all());
        assert_eq!(all.dirty_count(), 5);
    }

    #[test]
    fn touch_variants_mark_expected_nodes() {
        let p = Partition::from_assignment(vec![0, 0, 3, 3, 7]);
        let mut delta = PartitionDelta::clean(5);
        delta.touch(NodeId::from_index(4));
        delta.touch_subgraph(&p, 3);
        assert!(delta.is_dirty(NodeId::from_index(2)));
        assert!(delta.is_dirty(NodeId::from_index(3)));
        assert!(delta.is_dirty(NodeId::from_index(4)));
        assert!(!delta.is_dirty(NodeId::from_index(0)));
        assert_eq!(delta.dirty_count(), 3);
    }

    #[test]
    fn union_folds_dirt() {
        let mut a = PartitionDelta::clean(3);
        a.touch(NodeId::from_index(0));
        let mut b = PartitionDelta::clean(3);
        b.touch(NodeId::from_index(2));
        a.union(&b);
        assert!(a.is_dirty(NodeId::from_index(0)));
        assert!(!a.is_dirty(NodeId::from_index(1)));
        assert!(a.is_dirty(NodeId::from_index(2)));
    }

    #[test]
    fn dirty_subgraphs_follow_subgraph_order_with_sparse_ids() {
        // Sparse ids 2 and 9: subgraphs() returns [members of 2, members
        // of 9]; the flags must line up positionally.
        let p = Partition::from_assignment(vec![9, 2, 2, 9]);
        let mut delta = PartitionDelta::clean(4);
        delta.touch(NodeId::from_index(0)); // member of subgraph 9
        assert_eq!(delta.dirty_subgraphs(&p), vec![false, true]);
        delta.touch(NodeId::from_index(1)); // member of subgraph 2
        assert_eq!(delta.dirty_subgraphs(&p), vec![true, true]);
    }
}
