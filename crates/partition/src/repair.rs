//! Validity repair: connectivity splits, SCC merges and in-situ capacity
//! splits (paper §4.4.4).

use crate::partition::Partition;
use crate::quotient::Quotient;
use cocco_graph::{Graph, NodeId};

/// Restores connectivity and acyclicity after arbitrary assignment edits:
///
/// 1. split every subgraph into its weakly-connected components;
/// 2. merge each quotient SCC into one subgraph — the SCC's members are
///    mutually reachable through each other's edges, so the merged subgraph
///    stays connected while the quotient becomes acyclic;
/// 3. iterate (an SCC merge can join components that a later split leaves
///    untouched, so one extra pass settles the fixpoint);
/// 4. canonicalize ids into execution order.
///
/// The result always satisfies [`Partition::validate`].
///
/// # Examples
///
/// ```
/// use cocco_partition::{repair_connectivity, Partition};
///
/// let g = cocco_graph::models::diamond();
/// // Invalid: quotient cycle between subgraphs 0 and 1.
/// let broken = Partition::from_assignment(vec![0, 0, 0, 1, 0]);
/// let fixed = repair_connectivity(&g, broken);
/// assert!(fixed.validate(&g).is_ok());
/// ```
pub fn repair_connectivity(graph: &Graph, mut partition: Partition) -> Partition {
    debug_assert_eq!(partition.len(), graph.len());
    for _ in 0..graph.len().max(4) {
        split_components(graph, &mut partition);
        let merged = merge_sccs(graph, &mut partition);
        if !merged {
            break;
        }
    }
    let ok = partition.canonicalize(graph);
    debug_assert!(ok, "repair_connectivity left a cyclic quotient");
    partition
}

/// Splits every subgraph whose footprint check fails, using the paper's
/// in-situ `split-subgraph`: the subgraph is halved along the topological
/// order (never creating quotient cycles), components are re-split, and the
/// process repeats until every subgraph fits or is a single node.
///
/// `fits` receives the (ascending) member list of one subgraph.
pub fn split_oversized(
    graph: &Graph,
    mut partition: Partition,
    fits: &dyn Fn(&[NodeId]) -> bool,
) -> Partition {
    loop {
        let mut changed = false;
        let mut next = partition.fresh_id();
        for members in partition.subgraphs() {
            if members.len() <= 1 || fits(&members) {
                continue;
            }
            // Halve along the topological order: members are ascending, so
            // all internal edges flow first-half -> second-half.
            let mid = members.len() / 2;
            for &m in &members[mid..] {
                partition.assign(m, next);
            }
            next += 1;
            changed = true;
        }
        if !changed {
            break;
        }
        // Halving may disconnect pieces; restore validity before retrying.
        partition = repair_connectivity(graph, partition);
    }
    partition
}

/// Full repair pipeline: connectivity + acyclicity, then capacity splits.
/// The result is valid and every multi-node subgraph satisfies `fits`.
pub fn repair(graph: &Graph, partition: Partition, fits: &dyn Fn(&[NodeId]) -> bool) -> Partition {
    let partition = repair_connectivity(graph, partition);
    split_oversized(graph, partition, fits)
}

/// Splits each subgraph into weakly-connected components (in place).
fn split_components(graph: &Graph, partition: &mut Partition) {
    let n = graph.len();
    // Union-find over nodes, unioning only edges internal to a subgraph.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for id in graph.node_ids() {
        for &c in graph.consumers(id) {
            if partition.subgraph_of(id) == partition.subgraph_of(c) {
                let (a, b) = (
                    find(&mut parent, id.index() as u32),
                    find(&mut parent, c.index() as u32),
                );
                if a != b {
                    parent[a as usize] = b;
                }
            }
        }
    }
    // Each (old subgraph, component root) pair becomes its own subgraph.
    let mut fresh = partition.fresh_id();
    let mut remap: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
    for i in 0..n {
        let node = NodeId::from_index(i);
        let old = partition.subgraph_of(node);
        let root = find(&mut parent, i as u32);
        let id = *remap.entry((old, root)).or_insert_with(|| {
            let id = fresh;
            fresh += 1;
            id
        });
        partition.assign(node, id);
    }
}

/// Merges every non-trivial quotient SCC into a single subgraph; returns
/// whether anything changed.
fn merge_sccs(graph: &Graph, partition: &mut Partition) -> bool {
    let quotient = Quotient::build(graph, partition);
    let sccs = quotient.sccs();
    if sccs.iter().all(|s| s.len() == 1) {
        return false;
    }
    // Map compact id -> SCC representative (first member).
    let mut rep = vec![0u32; quotient.num_subgraphs()];
    for scc in &sccs {
        for &m in scc {
            rep[m as usize] = scc[0];
        }
    }
    for i in 0..partition.len() {
        let node = NodeId::from_index(i);
        let compact = quotient.compact_id(partition.subgraph_of(node));
        partition.assign(node, rep[compact as usize]);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn repairs_random_assignments() {
        let g = cocco_graph::models::googlenet();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let k = rng.gen_range(1..=20u32);
            let assignment: Vec<u32> = (0..g.len()).map(|_| rng.gen_range(0..k)).collect();
            let p = repair_connectivity(&g, Partition::from_assignment(assignment));
            assert!(p.validate(&g).is_ok());
        }
    }

    #[test]
    fn valid_partitions_pass_through_stably() {
        let g = cocco_graph::models::chain(5);
        let p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1]);
        let repaired = repair_connectivity(&g, p.clone());
        assert_eq!(repaired, p);
    }

    #[test]
    fn scc_merge_preserves_connectivity() {
        let g = cocco_graph::models::diamond();
        // Cycle: {input,a,l,add} vs {r}.
        let p = Partition::from_assignment(vec![0, 0, 0, 1, 0]);
        let fixed = repair_connectivity(&g, p);
        assert!(fixed.validate(&g).is_ok());
        // The cycle can only be fixed by merging: one subgraph remains.
        assert_eq!(fixed.num_subgraphs(), 1);
    }

    #[test]
    fn oversized_split_terminates_at_singletons() {
        let g = cocco_graph::models::chain(7);
        let p = Partition::whole(g.len());
        // Nothing fits: must end fully split.
        let fixed = split_oversized(&g, p, &|_| false);
        assert!(fixed.validate(&g).is_ok());
        assert_eq!(fixed.num_subgraphs(), g.len());
    }

    #[test]
    fn oversized_split_respects_fitting_subgraphs() {
        let g = cocco_graph::models::chain(7);
        let p = Partition::whole(g.len());
        // Subgraphs of <= 3 nodes "fit".
        let fixed = split_oversized(&g, p, &|m| m.len() <= 3);
        assert!(fixed.validate(&g).is_ok());
        assert!(fixed.subgraphs().iter().all(|m| m.len() <= 3));
        // Should not have split all the way down.
        assert!(fixed.num_subgraphs() < g.len());
    }

    #[test]
    fn full_repair_on_random_nasnet_assignments() {
        let g = cocco_graph::models::randwire_a();
        let mut rng = StdRng::seed_from_u64(11);
        let assignment: Vec<u32> = (0..g.len()).map(|_| rng.gen_range(0..12)).collect();
        let fixed = repair(&g, Partition::from_assignment(assignment), &|m| {
            m.len() <= 10
        });
        assert!(fixed.validate(&g).is_ok());
        assert!(fixed.subgraphs().iter().all(|m| m.len() <= 10));
    }
}
