//! Validity repair: connectivity splits, SCC merges and in-situ capacity
//! splits (paper §4.4.4).
//!
//! Every pass exists in two flavours: the plain entry points
//! ([`repair`], [`repair_connectivity`], [`split_oversized`]) and
//! `*_with_delta` variants that additionally record, into a
//! [`PartitionDelta`], every node whose subgraph *membership set* the pass
//! changed — the change record the incremental evaluation path uses to
//! re-score only touched subgraphs. Renumbering alone (canonicalization)
//! emits no dirt: node-level deltas survive id remapping by construction.

use crate::delta::PartitionDelta;
use crate::partition::Partition;
use crate::quotient::Quotient;
use cocco_graph::{Graph, NodeId};

/// Restores connectivity and acyclicity after arbitrary assignment edits:
///
/// 1. split every subgraph into its weakly-connected components;
/// 2. merge each quotient SCC into one subgraph — the SCC's members are
///    mutually reachable through each other's edges, so the merged subgraph
///    stays connected while the quotient becomes acyclic;
/// 3. iterate (an SCC merge can join components that a later split leaves
///    untouched, so one extra pass settles the fixpoint);
/// 4. canonicalize ids into execution order.
///
/// The result always satisfies [`Partition::validate`].
///
/// # Examples
///
/// ```
/// use cocco_partition::{repair_connectivity, Partition};
///
/// let g = cocco_graph::models::diamond();
/// // Invalid: quotient cycle between subgraphs 0 and 1.
/// let broken = Partition::from_assignment(vec![0, 0, 0, 1, 0]);
/// let fixed = repair_connectivity(&g, broken);
/// assert!(fixed.validate(&g).is_ok());
/// ```
pub fn repair_connectivity(graph: &Graph, partition: Partition) -> Partition {
    let mut delta = PartitionDelta::clean(graph.len());
    repair_connectivity_with_delta(graph, partition, &mut delta)
}

/// [`repair_connectivity`], recording every membership change into `delta`.
pub fn repair_connectivity_with_delta(
    graph: &Graph,
    mut partition: Partition,
    delta: &mut PartitionDelta,
) -> Partition {
    debug_assert_eq!(partition.len(), graph.len());
    for _ in 0..graph.len().max(4) {
        split_components(graph, &mut partition, delta);
        let merged = merge_sccs(graph, &mut partition, delta);
        if !merged {
            break;
        }
    }
    let ok = partition.canonicalize(graph);
    debug_assert!(ok, "repair_connectivity left a cyclic quotient");
    partition
}

/// Splits every subgraph whose footprint check fails, using the paper's
/// in-situ `split-subgraph`: the subgraph is halved along the topological
/// order (never creating quotient cycles), components are re-split, and the
/// process repeats until every subgraph fits or is a single node.
///
/// `fits` receives the (ascending) member list of one subgraph.
pub fn split_oversized(
    graph: &Graph,
    partition: Partition,
    fits: &dyn Fn(&[NodeId]) -> bool,
) -> Partition {
    let mut delta = PartitionDelta::clean(graph.len());
    split_oversized_with_delta(graph, partition, fits, &mut delta)
}

/// [`split_oversized`], recording every membership change into `delta`.
pub fn split_oversized_with_delta(
    graph: &Graph,
    mut partition: Partition,
    fits: &dyn Fn(&[NodeId]) -> bool,
    delta: &mut PartitionDelta,
) -> Partition {
    loop {
        let mut changed = false;
        let mut next = partition.fresh_id();
        for members in partition.subgraphs() {
            if members.len() <= 1 || fits(&members) {
                continue;
            }
            // Halve along the topological order: members are ascending, so
            // all internal edges flow first-half -> second-half.
            delta.touch_members(&members);
            let mid = members.len() / 2;
            for &m in &members[mid..] {
                partition.assign(m, next);
            }
            next += 1;
            changed = true;
        }
        if !changed {
            break;
        }
        // Halving may disconnect pieces; restore validity before retrying.
        partition = repair_connectivity_with_delta(graph, partition, delta);
    }
    partition
}

/// Full repair pipeline: connectivity + acyclicity, then capacity splits.
/// The result is valid and every multi-node subgraph satisfies `fits`.
pub fn repair(graph: &Graph, partition: Partition, fits: &dyn Fn(&[NodeId]) -> bool) -> Partition {
    let mut delta = PartitionDelta::clean(graph.len());
    repair_with_delta(graph, partition, fits, &mut delta)
}

/// [`repair`], recording every membership change into `delta`. A node the
/// pipeline never moves between member sets stays clean, so a subgraph
/// with no dirty node is guaranteed to be the same member set the caller
/// had before repair.
pub fn repair_with_delta(
    graph: &Graph,
    partition: Partition,
    fits: &dyn Fn(&[NodeId]) -> bool,
    delta: &mut PartitionDelta,
) -> Partition {
    let partition = repair_connectivity_with_delta(graph, partition, delta);
    split_oversized_with_delta(graph, partition, fits, delta)
}

/// Splits each subgraph into weakly-connected components (in place),
/// marking the members of every subgraph that actually split.
fn split_components(graph: &Graph, partition: &mut Partition, delta: &mut PartitionDelta) {
    let n = graph.len();
    // Union-find over nodes, unioning only edges internal to a subgraph.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for id in graph.node_ids() {
        for &c in graph.consumers(id) {
            if partition.subgraph_of(id) == partition.subgraph_of(c) {
                let (a, b) = (
                    find(&mut parent, id.index() as u32),
                    find(&mut parent, c.index() as u32),
                );
                if a != b {
                    parent[a as usize] = b;
                }
            }
        }
    }
    // Each (old subgraph, component root) pair becomes its own subgraph.
    let olds: Vec<u32> = (0..n)
        .map(|i| partition.subgraph_of(NodeId::from_index(i)))
        .collect();
    let roots: Vec<u32> = (0..n).map(|i| find(&mut parent, i as u32)).collect();
    let mut fresh = partition.fresh_id();
    let mut remap: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
    let mut components_of: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for i in 0..n {
        let id = *remap.entry((olds[i], roots[i])).or_insert_with(|| {
            let id = fresh;
            fresh += 1;
            *components_of.entry(olds[i]).or_insert(0) += 1;
            id
        });
        partition.assign(NodeId::from_index(i), id);
    }
    // A subgraph that stayed in one piece kept its member set (only its id
    // changed); one that split changed every piece's membership.
    for (i, old) in olds.iter().enumerate() {
        if components_of.get(old).copied().unwrap_or(0) > 1 {
            delta.touch(NodeId::from_index(i));
        }
    }
}

/// Merges every non-trivial quotient SCC into a single subgraph, marking
/// the members of every merged subgraph; returns whether anything changed.
fn merge_sccs(graph: &Graph, partition: &mut Partition, delta: &mut PartitionDelta) -> bool {
    let quotient = Quotient::build(graph, partition);
    let sccs = quotient.sccs();
    if sccs.iter().all(|s| s.len() == 1) {
        return false;
    }
    // Map compact id -> SCC representative (first member) and SCC size.
    let mut rep = vec![0u32; quotient.num_subgraphs()];
    let mut scc_len = vec![0usize; quotient.num_subgraphs()];
    for scc in &sccs {
        for &m in scc {
            rep[m as usize] = scc[0];
            scc_len[m as usize] = scc.len();
        }
    }
    for i in 0..partition.len() {
        let node = NodeId::from_index(i);
        let compact = quotient.compact_id(partition.subgraph_of(node));
        if scc_len[compact as usize] > 1 {
            delta.touch(node);
        }
        partition.assign(node, rep[compact as usize]);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn repairs_random_assignments() {
        let g = cocco_graph::models::googlenet();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let k = rng.gen_range(1..=20u32);
            let assignment: Vec<u32> = (0..g.len()).map(|_| rng.gen_range(0..k)).collect();
            let p = repair_connectivity(&g, Partition::from_assignment(assignment));
            assert!(p.validate(&g).is_ok());
        }
    }

    #[test]
    fn valid_partitions_pass_through_stably() {
        let g = cocco_graph::models::chain(5);
        let p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1]);
        let repaired = repair_connectivity(&g, p.clone());
        assert_eq!(repaired, p);
    }

    #[test]
    fn scc_merge_preserves_connectivity() {
        let g = cocco_graph::models::diamond();
        // Cycle: {input,a,l,add} vs {r}.
        let p = Partition::from_assignment(vec![0, 0, 0, 1, 0]);
        let fixed = repair_connectivity(&g, p);
        assert!(fixed.validate(&g).is_ok());
        // The cycle can only be fixed by merging: one subgraph remains.
        assert_eq!(fixed.num_subgraphs(), 1);
    }

    #[test]
    fn oversized_split_terminates_at_singletons() {
        let g = cocco_graph::models::chain(7);
        let p = Partition::whole(g.len());
        // Nothing fits: must end fully split.
        let fixed = split_oversized(&g, p, &|_| false);
        assert!(fixed.validate(&g).is_ok());
        assert_eq!(fixed.num_subgraphs(), g.len());
    }

    #[test]
    fn oversized_split_respects_fitting_subgraphs() {
        let g = cocco_graph::models::chain(7);
        let p = Partition::whole(g.len());
        // Subgraphs of <= 3 nodes "fit".
        let fixed = split_oversized(&g, p, &|m| m.len() <= 3);
        assert!(fixed.validate(&g).is_ok());
        assert!(fixed.subgraphs().iter().all(|m| m.len() <= 3));
        // Should not have split all the way down.
        assert!(fixed.num_subgraphs() < g.len());
    }

    #[test]
    fn clean_pass_through_emits_no_dirt() {
        let g = cocco_graph::models::chain(5);
        let p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1]);
        let mut delta = PartitionDelta::clean(g.len());
        let repaired = repair_with_delta(&g, p.clone(), &|_| true, &mut delta);
        assert_eq!(repaired, p);
        assert!(delta.is_clean(), "a no-op repair must not invalidate reuse");
    }

    #[test]
    fn scc_merge_marks_merged_members() {
        let g = cocco_graph::models::diamond();
        // Cycle: {input,a,l,add} vs {r} — repair merges everything.
        let p = Partition::from_assignment(vec![0, 0, 0, 1, 0]);
        let mut delta = PartitionDelta::clean(g.len());
        let fixed = repair_connectivity_with_delta(&g, p, &mut delta);
        assert_eq!(fixed.num_subgraphs(), 1);
        assert!(
            delta.is_all(),
            "every node's subgraph membership changed in the merge"
        );
    }

    #[test]
    fn capacity_split_marks_only_the_halved_subgraph() {
        let g = cocco_graph::models::chain(7); // 8 nodes
        let p = Partition::from_assignment(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let mut delta = PartitionDelta::clean(g.len());
        // Only the second subgraph is "too big".
        let first = cocco_graph::NodeId::from_index(0);
        let fixed =
            split_oversized_with_delta(&g, p, &|m| m.len() <= 2 || m.contains(&first), &mut delta);
        assert!(fixed.validate(&g).is_ok());
        for i in 0..4 {
            assert!(
                !delta.is_dirty(cocco_graph::NodeId::from_index(i)),
                "untouched subgraph must stay clean (node {i})"
            );
        }
        for i in 4..8 {
            assert!(
                delta.is_dirty(cocco_graph::NodeId::from_index(i)),
                "halved subgraph must be marked (node {i})"
            );
        }
    }

    #[test]
    fn untouched_subgraphs_keep_their_member_sets() {
        // The reuse invariant: after repair, any subgraph with no dirty
        // node has a member set that already existed before the repair.
        let g = cocco_graph::models::googlenet();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let k = rng.gen_range(1..=16u32);
            let assignment: Vec<u32> = (0..g.len()).map(|_| rng.gen_range(0..k)).collect();
            let before = Partition::from_assignment(assignment);
            let old_sets: std::collections::HashSet<Vec<cocco_graph::NodeId>> =
                before.subgraphs().into_iter().collect();
            let mut delta = PartitionDelta::clean(g.len());
            let after = repair_with_delta(&g, before, &|m| m.len() <= 6, &mut delta);
            let dirty = delta.dirty_subgraphs(&after);
            for (members, dirty) in after.subgraphs().into_iter().zip(dirty) {
                if !dirty {
                    assert!(
                        old_sets.contains(&members),
                        "clean subgraph {members:?} did not exist before repair"
                    );
                }
            }
        }
    }

    #[test]
    fn full_repair_on_random_nasnet_assignments() {
        let g = cocco_graph::models::randwire_a();
        let mut rng = StdRng::seed_from_u64(11);
        let assignment: Vec<u32> = (0..g.len()).map(|_| rng.gen_range(0..12)).collect();
        let fixed = repair(&g, Partition::from_assignment(assignment), &|m| {
            m.len() <= 10
        });
        assert!(fixed.validate(&g).is_ok());
        assert!(fixed.subgraphs().iter().all(|m| m.len() <= 10));
    }
}
