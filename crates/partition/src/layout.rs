//! Flat, arena-backed partition layouts — the data-oriented view the
//! evaluation hot path consumes.
//!
//! [`Partition::subgraphs`] materializes a `Vec<Vec<NodeId>>` per call:
//! one heap allocation per subgraph plus the outer vector, repeated for
//! every candidate of every generation. [`PartitionLayout`] is the same
//! information in two contiguous buffers — one flat member array plus an
//! offsets array — and [`LayoutArena`] builds it with a counting sort
//! into reusable storage, so a warmed arena materializes a partition's
//! member lists without touching the allocator at all.
//!
//! The layout reproduces [`Partition::subgraphs`]' order **exactly**:
//! subgraphs appear in ascending (sparse) id order with empty ids
//! skipped, and members within a subgraph ascend (topological order).
//! Everything downstream — fingerprinting, cache keys, the per-subgraph
//! fold — consumes either representation through [`SubgraphsView`], so
//! the arena path and the nested reference path are bit-identical by
//! construction.

use crate::partition::Partition;
use cocco_graph::NodeId;

/// A read-only, order-preserving view of a partition's member lists —
/// implemented by the flat [`PartitionLayout`] and by the nested
/// `Vec<Vec<NodeId>>` reference representation so evaluation code
/// monomorphizes over both and performs the identical operations in the
/// identical order.
pub trait SubgraphsView {
    /// Number of subgraphs in execution order.
    fn num_subgraphs(&self) -> usize;

    /// Members of the `i`-th subgraph (ascending node ids).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    fn members_of(&self, i: usize) -> &[NodeId];

    /// `true` when the view covers no subgraphs.
    fn no_subgraphs(&self) -> bool {
        self.num_subgraphs() == 0
    }

    /// `true` when any subgraph is empty (a structurally invalid
    /// partition an evaluator must reject).
    fn any_empty(&self) -> bool {
        (0..self.num_subgraphs()).any(|i| self.members_of(i).is_empty())
    }
}

impl SubgraphsView for [Vec<NodeId>] {
    fn num_subgraphs(&self) -> usize {
        self.len()
    }

    fn members_of(&self, i: usize) -> &[NodeId] {
        &self[i]
    }
}

impl SubgraphsView for Vec<Vec<NodeId>> {
    fn num_subgraphs(&self) -> usize {
        self.len()
    }

    fn members_of(&self, i: usize) -> &[NodeId] {
        &self[i]
    }
}

impl SubgraphsView for PartitionLayout<'_> {
    fn num_subgraphs(&self) -> usize {
        PartitionLayout::num_subgraphs(self)
    }

    fn members_of(&self, i: usize) -> &[NodeId] {
        self.subgraph(i)
    }
}

/// A flat view of one partition's member lists: a contiguous `NodeId`
/// buffer plus an offsets array (`offsets[i]..offsets[i + 1]` delimits
/// subgraph `i`). Subgraph order and member order match
/// [`Partition::subgraphs`] exactly.
///
/// # Examples
///
/// ```
/// use cocco_partition::{LayoutArena, Partition, SubgraphsView};
///
/// let p = Partition::from_assignment(vec![9, 2, 2, 9]);
/// let mut arena = LayoutArena::new();
/// let layout = arena.build_from_partition(&p);
/// assert_eq!(layout.num_subgraphs(), 2);
/// assert_eq!(layout.to_nested(), p.subgraphs());
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PartitionLayout<'a> {
    members: &'a [NodeId],
    offsets: &'a [u32],
}

impl<'a> PartitionLayout<'a> {
    /// Wraps raw layout buffers. `offsets` must be ascending, start at 0
    /// (when non-empty) and end at `members.len()`; debug builds assert
    /// this, release builds trust the (arena) builder.
    pub fn from_raw(members: &'a [NodeId], offsets: &'a [u32]) -> Self {
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets ascend");
        debug_assert!(
            offsets.first().is_none_or(|&o| o == 0),
            "offsets start at 0"
        );
        debug_assert!(
            offsets.last().is_none_or(|&o| o as usize == members.len()),
            "offsets cover the member buffer"
        );
        Self { members, offsets }
    }

    /// Number of subgraphs.
    pub fn num_subgraphs(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of member nodes across all subgraphs.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the layout covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Members of subgraph `i` — a slice into the flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn subgraph(&self, i: usize) -> &'a [NodeId] {
        &self.members[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates subgraph member slices in execution order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [NodeId]> + '_ {
        (0..self.num_subgraphs()).map(|i| self.subgraph(i))
    }

    /// The flat member buffer (subgraphs concatenated in order).
    pub fn members(&self) -> &'a [NodeId] {
        self.members
    }

    /// The offsets array (`num_subgraphs + 1` entries when non-empty).
    pub fn offsets(&self) -> &'a [u32] {
        self.offsets
    }

    /// Converts back to the nested reference representation.
    pub fn to_nested(&self) -> Vec<Vec<NodeId>> {
        self.iter().map(<[NodeId]>::to_vec).collect()
    }
}

/// Reusable storage for [`PartitionLayout`]s: a bump-style arena whose
/// buffers are cleared (capacity kept) between builds and grown
/// monotonically, so a warmed arena materializes layouts with **zero**
/// heap allocations.
///
/// The builder is a counting sort over the assignment — one pass to
/// count members per (sparse) subgraph id, a prefix sum for the offsets,
/// one pass to scatter node ids — reproducing [`Partition::subgraphs`]'
/// subgraph order and ascending member order exactly.
#[derive(Debug, Default)]
pub struct LayoutArena {
    members: Vec<NodeId>,
    offsets: Vec<u32>,
    /// Counting-sort scratch: per sparse subgraph id, the member count,
    /// then (after the prefix pass) the id's write cursor.
    counts: Vec<u32>,
    builds: u64,
    grows: u64,
}

impl LayoutArena {
    /// An empty arena (first builds grow it to the working-set size).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the build buffers, keeping capacity, and counts whether
    /// this build will have to grow any of them.
    fn begin(&mut self, members_needed: usize, offsets_needed: usize, counts_needed: usize) {
        self.builds += 1;
        if self.members.capacity() < members_needed
            || self.offsets.capacity() < offsets_needed
            || self.counts.capacity() < counts_needed
        {
            self.grows += 1;
        }
        self.members.clear();
        self.offsets.clear();
    }

    /// Builds the layout of `partition` into the arena, returning a view
    /// valid until the next build. Alloc-free once the arena has grown
    /// to the partition's size.
    pub fn build_from_partition(&mut self, partition: &Partition) -> PartitionLayout<'_> {
        let assignment = partition.assignment();
        let n = assignment.len();
        let max = assignment.iter().copied().max().map_or(0, |m| m as usize);
        self.begin(n, max + 2, max + 1);
        self.counts.clear();
        self.counts.resize(max + 1, 0);
        for &a in assignment {
            self.counts[a as usize] += 1;
        }
        // Prefix pass: non-empty ids (in ascending id order, matching
        // `Partition::subgraphs`) get their start cursor; each one closes
        // the previous subgraph's offset.
        self.offsets.push(0);
        let mut total = 0u32;
        for c in self.counts.iter_mut() {
            if *c > 0 {
                let k = *c;
                *c = total;
                total += k;
                self.offsets.push(total);
            }
        }
        // Scatter pass: nodes iterate ascending, so each subgraph's run
        // fills in ascending member order.
        self.members.resize(n, NodeId::from_index(0));
        for (i, &a) in assignment.iter().enumerate() {
            let slot = self.counts[a as usize];
            self.counts[a as usize] = slot + 1;
            self.members[slot as usize] = NodeId::from_index(i);
        }
        self.layout()
    }

    /// Builds a layout from an explicit nested subgraph list (order
    /// preserved verbatim) — the conversion arm of the round-trip with
    /// `Vec<Vec<NodeId>>`.
    pub fn build_from_nested(&mut self, subgraphs: &[Vec<NodeId>]) -> PartitionLayout<'_> {
        let n: usize = subgraphs.iter().map(Vec::len).sum();
        self.begin(n, subgraphs.len() + 1, 0);
        self.offsets.push(0);
        for members in subgraphs {
            self.members.extend_from_slice(members);
            self.offsets.push(self.members.len() as u32);
        }
        self.layout()
    }

    /// The most recently built layout (empty before the first build).
    pub fn layout(&self) -> PartitionLayout<'_> {
        PartitionLayout::from_raw(&self.members, &self.offsets)
    }

    /// Bytes of heap capacity currently owned by the arena's buffers.
    pub fn bytes(&self) -> u64 {
        (self.members.capacity() * std::mem::size_of::<NodeId>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.counts.capacity() * std::mem::size_of::<u32>()) as u64
    }

    /// Builds served entirely from existing capacity (the warmed,
    /// zero-allocation steady state).
    pub fn reuses(&self) -> u64 {
        self.builds - self.grows
    }

    /// Builds that had to grow at least one buffer.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Total builds performed.
    pub fn builds(&self) -> u64 {
        self.builds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_subgraphs_order_exactly() {
        for assignment in [
            vec![0u32, 0, 1, 1, 2],
            vec![9, 2, 2, 9, 4],
            vec![3, 3, 3, 3],
            vec![5, 0, 5, 0, 7, 1],
            vec![0],
        ] {
            let p = Partition::from_assignment(assignment.clone());
            let mut arena = LayoutArena::new();
            let layout = arena.build_from_partition(&p);
            assert_eq!(layout.to_nested(), p.subgraphs(), "{assignment:?}");
            assert_eq!(layout.len(), p.len());
            // Members ascend within every subgraph.
            for sub in layout.iter() {
                assert!(sub.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn models_round_trip_through_the_arena() {
        for name in ["googlenet", "resnet50", "randwire-a"] {
            let g = cocco_graph::models::by_name(name).unwrap();
            let mut arena = LayoutArena::new();
            for l in [1usize, 3, 7] {
                let p = Partition::depth_groups(&g, l);
                let nested = p.subgraphs();
                assert_eq!(arena.build_from_partition(&p).to_nested(), nested);
                assert_eq!(arena.build_from_nested(&nested).to_nested(), nested);
            }
        }
    }

    #[test]
    fn warmed_arena_reuses_capacity() {
        let g = cocco_graph::models::googlenet();
        let p = Partition::depth_groups(&g, 3);
        let mut arena = LayoutArena::new();
        arena.build_from_partition(&p);
        let grows_after_warmup = arena.grows();
        assert!(grows_after_warmup >= 1, "first build must grow");
        for _ in 0..10 {
            arena.build_from_partition(&p);
        }
        assert_eq!(
            arena.grows(),
            grows_after_warmup,
            "warmed builds must not grow"
        );
        assert_eq!(arena.reuses(), 10);
        assert_eq!(arena.builds(), 11);
        assert!(arena.bytes() > 0);
    }

    #[test]
    fn empty_and_singleton_layouts() {
        let mut arena = LayoutArena::new();
        let layout = arena.build_from_nested(&[]);
        assert_eq!(layout.num_subgraphs(), 0);
        assert!(layout.is_empty());
        assert!(layout.no_subgraphs());
        let p = Partition::singletons(3);
        let layout = arena.build_from_partition(&p);
        assert_eq!(layout.num_subgraphs(), 3);
        assert!(!layout.any_empty());
        assert_eq!(layout.subgraph(1), &[NodeId::from_index(1)]);
    }

    #[test]
    fn views_agree_across_representations() {
        let p = Partition::from_assignment(vec![1, 1, 4, 4, 2]);
        let nested = p.subgraphs();
        let mut arena = LayoutArena::new();
        let layout = arena.build_from_partition(&p);
        assert_eq!(
            SubgraphsView::num_subgraphs(&layout),
            SubgraphsView::num_subgraphs(&nested)
        );
        for i in 0..nested.len() {
            assert_eq!(layout.members_of(i), nested.members_of(i));
        }
        let empties: Vec<Vec<NodeId>> = vec![vec![], vec![NodeId::from_index(0)]];
        assert!(empties.any_empty());
        assert!(!nested.any_empty());
    }
}
